(* The serving layer: protocol round-trips (qcheck), malformed-input
   rejection, cache semantics (including structural equality of a
   cached plan against a freshly computed one), and the worker pool's
   backpressure and drain behavior. *)

module P = Wa_service.Protocol
module Cache = Wa_service.Cache
module Engine = Wa_service.Engine
module Pool = Wa_util.Parallel.Pool
module Json = Wa_util.Json
module Vec2 = Wa_geom.Vec2
module Pipeline = Wa_core.Pipeline

(* Generators ----------------------------------------------------------- *)

let gen_finite lo hi = QCheck.Gen.float_range lo hi

let gen_vec2 =
  QCheck.Gen.map
    (fun (x, y) -> Vec2.make x y)
    (QCheck.Gen.pair (gen_finite (-2000.0) 2000.0) (gen_finite (-2000.0) 2000.0))

let gen_power =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return `Global;
      QCheck.Gen.return `Uniform;
      QCheck.Gen.return `Linear;
      QCheck.Gen.map (fun tau -> `Oblivious tau) (gen_finite 0.05 0.95);
    ]

let gen_deploy =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map
        (fun pts -> P.Points (Array.of_list pts))
        QCheck.Gen.(list_size (int_range 1 8) gen_vec2);
      QCheck.Gen.map
        (fun (kind, n, seed, side) -> P.Generate { kind; n; seed; side })
        QCheck.Gen.(
          quad
            (oneofl [ "uniform"; "disk"; "grid"; "clusters"; "line" ])
            (int_range 1 500) (int_range 0 9999) (gen_finite 10.0 5000.0));
    ]

let gen_spec =
  QCheck.Gen.map
    (fun ((deploy, power, engine), (alpha, beta, gamma, no_cache)) ->
      { P.deploy; power; alpha; beta; gamma; engine; no_cache })
    QCheck.Gen.(
      pair
        (triple gen_deploy gen_power (oneofl [ `Dense; `Indexed ]))
        (quad (gen_finite 2.1 6.0) (gen_finite 0.2 3.0)
           (opt (gen_finite 0.1 0.9))
           bool))

let gen_request_body =
  QCheck.Gen.frequency
    [
      (1, QCheck.Gen.return P.Ping);
      (1, QCheck.Gen.return P.Stats);
      (1, QCheck.Gen.return P.Telemetry);
      (1, QCheck.Gen.return P.Shutdown);
      (4, QCheck.Gen.map (fun s -> P.Plan s) gen_spec);
      (2, QCheck.Gen.map (fun s -> P.Describe s) gen_spec);
      ( 2,
        QCheck.Gen.map
          (fun (spec, periods) -> P.Simulate { spec; periods })
          QCheck.Gen.(pair gen_spec (int_range 1 200)) );
      ( 2,
        QCheck.Gen.map
          (fun (sink, power, (alpha, beta, gamma)) ->
            P.Churn_create { sink; power; alpha; beta; gamma })
          QCheck.Gen.(
            triple gen_vec2 gen_power
              (triple (gen_finite 2.1 6.0) (gen_finite 0.2 3.0)
                 (opt (gen_finite 0.1 0.9)))) );
      ( 2,
        QCheck.Gen.map
          (fun (session, point) -> P.Churn_add { session; point })
          QCheck.Gen.(pair (int_range 1 1000) gen_vec2) );
      ( 2,
        QCheck.Gen.map
          (fun (session, node) -> P.Churn_remove { session; node })
          QCheck.Gen.(pair (int_range 1 1000) (int_range 0 1000)) );
      ( 1,
        QCheck.Gen.map
          (fun session -> P.Churn_info { session })
          QCheck.Gen.(int_range 1 1000) );
      ( 1,
        QCheck.Gen.map
          (fun session -> P.Churn_close { session })
          QCheck.Gen.(int_range 1 1000) );
    ]

let gen_request =
  QCheck.Gen.map
    (fun (id, deadline_ms, trace, body) -> { P.id; deadline_ms; trace; body })
    QCheck.Gen.(
      quad (int_range 0 1_000_000)
        (opt (gen_finite 0.1 60_000.0))
        bool gen_request_body)

let gen_plan_summary =
  QCheck.Gen.map
    (fun ((nodes, links, slots, rate), (raw_colors, repair_added, plan_valid),
          (point_diversity, link_diversity, description),
          (cached, compute_ms)) ->
      {
        P.nodes;
        links;
        slots;
        rate;
        raw_colors;
        repair_added;
        plan_valid;
        point_diversity;
        link_diversity;
        description;
        cached;
        compute_ms;
      })
    QCheck.Gen.(
      quad
        (quad (int_range 1 10_000) (int_range 0 10_000) (int_range 1 500)
           (gen_finite 0.001 1.0))
        (triple (int_range 0 500) (int_range 0 100) bool)
        (triple (gen_finite 0.0 1e6) (gen_finite 0.0 1e6) string_printable)
        (pair bool (gen_finite 0.0 1e5)))

let gen_cache_summary =
  QCheck.Gen.map
    (fun ((cs_entries, cs_bytes, cs_hits), (cs_misses, cs_coalesced, cs_evictions)) ->
      { P.cs_entries; cs_bytes; cs_hits; cs_misses; cs_coalesced; cs_evictions })
    QCheck.Gen.(
      pair
        (triple (int_range 0 10_000) (int_range 0 1_000_000) (int_range 0 100_000))
        (triple (int_range 0 100_000) (int_range 0 1000) (int_range 0 1000)))

let gen_stats_summary =
  QCheck.Gen.map
    (fun ((st_requests, st_responses, st_overloaded, st_deadline_misses),
          (st_inflight_peak, st_draining, st_workers, st_queue_depth),
          (st_queue_capacity, st_in_flight, st_sessions),
          st_cache) ->
      {
        P.st_requests;
        st_responses;
        st_overloaded;
        st_deadline_misses;
        st_inflight_peak;
        st_draining;
        st_workers;
        st_queue_depth;
        st_queue_capacity;
        st_in_flight;
        st_cache;
        st_sessions;
      })
    QCheck.Gen.(
      quad
        (quad (int_range 0 1_000_000) (int_range 0 1_000_000) (int_range 0 1000)
           (int_range 0 1000))
        (quad (int_range 0 256) bool (int_range 1 64) (int_range 0 256))
        (triple (int_range 1 1024) (int_range 0 256) (int_range 0 64))
        gen_cache_summary)

(* The latency quantiles travel through the nan <-> null codec; make
   sure the empty-window shape (all nan) is generated too. *)
let gen_stat_float =
  QCheck.Gen.frequency
    [ (6, gen_finite 0.0 10_000.0); (1, QCheck.Gen.return Float.nan) ]

let gen_op_latency =
  QCheck.Gen.map
    (fun ((ol_op, ol_count), (ol_p50_ms, ol_p90_ms, ol_p99_ms, ol_max_ms)) ->
      { P.ol_op; ol_count; ol_p50_ms; ol_p90_ms; ol_p99_ms; ol_max_ms })
    QCheck.Gen.(
      pair
        (pair (oneofl [ "plan"; "simulate"; "churn_add"; "ping" ])
           (int_range 0 100_000))
        (quad gen_stat_float gen_stat_float gen_stat_float gen_stat_float))

let gen_exemplar =
  QCheck.Gen.map
    (fun (ex_op, ex_id, ex_ms) -> { P.ex_op; ex_id; ex_ms })
    QCheck.Gen.(
      triple (oneofl [ "plan"; "simulate" ]) (int_range 0 1_000_000)
        (gen_finite 0.0 60_000.0))

let gen_gc_summary =
  QCheck.Gen.map
    (fun (gc_heap_words, gc_minor_collections, gc_major_collections,
          gc_compactions) ->
      { P.gc_heap_words; gc_minor_collections; gc_major_collections;
        gc_compactions })
    QCheck.Gen.(
      quad (int_range 0 100_000_000) (int_range 0 1_000_000)
        (int_range 0 100_000) (int_range 0 100))

let gen_telemetry_summary =
  QCheck.Gen.map
    (fun ((tel_uptime_s, tel_window_s, tel_windows),
          (tel_in_flight, tel_queue_depth, tel_sessions),
          (tel_ops, tel_cache, tel_exemplars),
          tel_gc) ->
      {
        P.tel_uptime_s;
        tel_window_s;
        tel_windows;
        tel_in_flight;
        tel_queue_depth;
        tel_ops;
        tel_cache;
        tel_sessions;
        tel_exemplars;
        tel_gc;
      })
    QCheck.Gen.(
      quad
        (triple (gen_finite 0.0 1e6) (gen_finite 0.0 3600.0) (int_range 0 60))
        (triple (int_range 0 256) (int_range 0 256) (int_range 0 64))
        (triple
           (list_size (int_range 0 6) gen_op_latency)
           gen_cache_summary
           (list_size (int_range 0 8) gen_exemplar))
        gen_gc_summary)

let gen_trace_span =
  QCheck.Gen.map
    (fun (t_name, t_start_ns, t_dur_ns, t_depth) ->
      { P.t_name; t_start_ns; t_dur_ns; t_depth })
    QCheck.Gen.(
      quad
        (oneofl
           [ "service.request"; "plan.links"; "plan.color"; "plan.repair" ])
        (int_range 0 1_000_000_000) (int_range 0 1_000_000_000) (int_range 0 8))

let gen_response_body =
  QCheck.Gen.frequency
    [
      (1, QCheck.Gen.return P.Pong);
      (1, QCheck.Gen.return P.Shutdown_ok);
      (3, QCheck.Gen.map (fun p -> P.Plan_r p) gen_plan_summary);
      (1, QCheck.Gen.map (fun d -> P.Describe_r d) QCheck.Gen.string_printable);
      ( 1,
        QCheck.Gen.map
          (fun s -> P.Churn_created s)
          QCheck.Gen.(int_range 1 1000) );
      ( 2,
        QCheck.Gen.map
          (fun ((session, node), (a, b, c, d)) ->
            P.Churn_r
              {
                session;
                node;
                links_total = a;
                links_kept = b;
                links_recolored = c;
                churn_slots = d;
                recompute_slots = a + d;
              })
          QCheck.Gen.(
            pair
              (pair (int_range 1 1000) (opt (int_range 0 1000)))
              (quad (int_range 0 100) (int_range 0 100) (int_range 0 100)
                 (int_range 0 100))) );
      ( 1,
        QCheck.Gen.map
          (fun (info_session, size, info_slots, info_valid) ->
            P.Session_r { info_session; size; info_slots; info_valid })
          QCheck.Gen.(
            quad (int_range 1 1000) (int_range 0 5000) (int_range 0 500) bool)
      );
      ( 1,
        QCheck.Gen.map
          (fun s -> P.Churn_closed s)
          QCheck.Gen.(int_range 1 1000) );
      (1, QCheck.Gen.map (fun s -> P.Stats_r s) gen_stats_summary);
      (1, QCheck.Gen.map (fun t -> P.Telemetry_r t) gen_telemetry_summary);
      ( 2,
        QCheck.Gen.map
          (fun (code, message) -> P.Error { code; message })
          QCheck.Gen.(
            pair
              (oneofl
                 [
                   P.Bad_request;
                   P.Bad_version;
                   P.Overloaded;
                   P.Deadline_exceeded;
                   P.No_such_session;
                   P.Shutting_down;
                   P.Internal;
                 ])
              string_printable) );
    ]

let gen_response =
  QCheck.Gen.map
    (fun (rid, body, rtrace) -> { P.rid; body; rtrace })
    QCheck.Gen.(
      triple (int_range 0 1_000_000) gen_response_body
        (opt (list_size (int_range 1 6) gen_trace_span)))

(* Round-trip properties ------------------------------------------------- *)

(* Equality via the canonical wire line: exact for every payload the
   encoder can produce, and insensitive to float re-parsing because
   the emitter's literals are read back verbatim. *)
let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"decode (encode request) = request"
    (QCheck.make ~print:(fun r -> P.request_to_line r) gen_request)
    (fun r ->
      match P.request_of_line (P.request_to_line r) with
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
      | Ok r' -> String.equal (P.request_to_line r) (P.request_to_line r'))

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"decode (encode response) = response"
    (QCheck.make ~print:(fun r -> P.response_to_line r) gen_response)
    (fun r ->
      match P.response_of_line (P.response_to_line r) with
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
      | Ok r' -> String.equal (P.response_to_line r) (P.response_to_line r'))

(* Malformed input ------------------------------------------------------- *)

let bad_requests =
  [
    ("not json", "this is not json");
    ("empty object", "{}");
    ("array", "[1,2,3]");
    ("missing op", {|{"v":1,"id":1}|});
    ("unknown op", {|{"v":1,"id":1,"op":"frobnicate"}|});
    ("future version", {|{"v":99,"id":1,"op":"ping"}|});
    ("string id", {|{"v":1,"id":"seven","op":"ping"}|});
    ("plan without deploy", {|{"v":1,"id":1,"op":"plan"}|});
    ( "plan with bad power",
      {|{"v":1,"id":1,"op":"plan","deploy":{"points":[[0,0],[1,1]]},"power":"loud"}|}
    );
    ( "plan with malformed point",
      {|{"v":1,"id":1,"op":"plan","deploy":{"points":[[0,0],[1]]}}|} );
    ( "plan with string alpha",
      {|{"v":1,"id":1,"op":"plan","deploy":{"points":[[0,0],[1,1]]},"alpha":"three"}|}
    );
    ( "plan with empty points",
      {|{"v":1,"id":1,"op":"plan","deploy":{"points":[]}}|} );
    ( "plan with bad engine",
      {|{"v":1,"id":1,"op":"plan","deploy":{"points":[[0,0],[1,1]]},"engine":"quantum"}|}
    );
    ( "oblivious tau out of range",
      {|{"v":1,"id":1,"op":"plan","deploy":{"points":[[0,0],[1,1]]},"power":"oblivious:1.5"}|}
    );
    ("churn_add without session", {|{"v":1,"id":1,"op":"churn_add","point":[1,2]}|});
    ("non-bool trace", {|{"v":1,"id":1,"op":"ping","trace":"yes"}|});
    ( "simulate with string periods",
      {|{"v":1,"id":1,"op":"simulate","deploy":{"points":[[0,0],[1,1]]},"periods":"many"}|}
    );
  ]

let test_malformed_requests () =
  List.iter
    (fun (name, line) ->
      Alcotest.(check bool)
        (name ^ " rejected") true
        (Result.is_error (P.request_of_line line)))
    bad_requests

let bad_responses =
  [
    ("not json", "][");
    ("missing ok+error", {|{"v":1,"id":1}|});
    ("unknown op", {|{"v":1,"id":1,"ok":true,"op":"mystery","result":null}|});
    ("error without code", {|{"v":1,"id":1,"ok":false,"error":{"message":"m"}}|});
    ( "error with unknown code",
      {|{"v":1,"id":1,"ok":false,"error":{"code":"doom","message":"m"}}|} );
    ("ok without result", {|{"v":1,"id":1,"ok":true,"op":"ping"}|});
    ( "telemetry without ops",
      {|{"v":1,"id":1,"ok":true,"op":"telemetry","result":{"uptime_s":1}}|} );
    ( "non-array trace in response",
      {|{"v":1,"id":1,"ok":true,"op":"ping","result":null,"trace":"spans"}|} );
    ( "trace span without name",
      {|{"v":1,"id":1,"ok":true,"op":"ping","result":null,"trace":[{"start_ns":0,"dur_ns":1,"depth":0}]}|}
    );
  ]

let test_malformed_responses () =
  List.iter
    (fun (name, line) ->
      Alcotest.(check bool)
        (name ^ " rejected") true
        (Result.is_error (P.response_of_line line)))
    bad_responses

let test_id_recovery () =
  Alcotest.(check int)
    "id recovered from malformed request" 42
    (P.id_of_line {|{"v":1,"id":42,"op":"frobnicate"}|});
  Alcotest.(check int) "unrecoverable id is 0" 0 (P.id_of_line "garbage")

(* Content addressing ---------------------------------------------------- *)

let spec_gen n seed =
  {
    P.deploy = P.Generate { kind = "uniform"; n; seed; side = 500.0 };
    power = `Global;
    alpha = 3.0;
    beta = 1.0;
    gamma = None;
    engine = `Indexed;
    no_cache = false;
  }

let test_content_key () =
  let s = spec_gen 40 5 in
  Alcotest.(check string)
    "key is deterministic" (Engine.spec_key s) (Engine.spec_key s);
  Alcotest.(check bool)
    "different seed, different key" false
    (String.equal (Engine.spec_key s) (Engine.spec_key (spec_gen 40 6)));
  (* no_cache steers the cache, it must not change the address. *)
  Alcotest.(check string)
    "no_cache not part of the key"
    (Engine.spec_key s)
    (Engine.spec_key { s with P.no_cache = true })

(* The tentpole correctness property of the cache: a plan served from
   the cache is structurally identical to one computed fresh by the
   pipeline for the same spec. *)
let test_cached_plan_equals_fresh () =
  let engine = Engine.create () in
  let spec = spec_gen 40 5 in
  let p1, cached1, _ = Engine.obtain_plan engine spec in
  let p2, cached2, _ = Engine.obtain_plan engine spec in
  Alcotest.(check bool) "first computes" false cached1;
  Alcotest.(check bool) "second is a hit" true cached2;
  let fresh =
    let params = Wa_sinr.Params.make ~alpha:3.0 ~beta:1.0 () in
    Pipeline.plan ~params ~engine:`Indexed `Global
      (Engine.pointset_of_spec spec)
  in
  let shape p = Json.to_string ~pretty:false (Wa_io.Export.plan_to_json p) in
  Alcotest.(check string) "cached = computed" (shape p1) (shape p2);
  Alcotest.(check string) "cached = fresh pipeline plan" (shape p2)
    (shape fresh)

(* Cache unit behavior --------------------------------------------------- *)

let test_cache_lru () =
  let c = Cache.create ~max_entries:2 ~metrics_prefix:"test.cache_lru" () in
  Cache.store c "a" ~bytes:10 1;
  Cache.store c "b" ~bytes:10 2;
  Alcotest.(check (option int)) "a present" (Some 1) (Cache.find c "a");
  (* [b] is now least recently used; the third insert evicts it. *)
  Cache.store c "c" ~bytes:10 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c");
  let s = Cache.stats c in
  Alcotest.(check int) "two entries" 2 s.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.stats c).Cache.entries

let test_cache_byte_bound () =
  let c =
    Cache.create ~max_entries:100 ~max_bytes:25
      ~metrics_prefix:"test.cache_bytes" ()
  in
  Cache.store c "a" ~bytes:10 1;
  Cache.store c "b" ~bytes:10 2;
  Cache.store c "c" ~bytes:10 3;
  let s = Cache.stats c in
  Alcotest.(check bool) "byte bound holds" true (s.Cache.total_bytes <= 25)

let test_cache_find_or_compute () =
  let c = Cache.create ~metrics_prefix:"test.cache_foc" () in
  let runs = ref 0 in
  let compute () =
    incr runs;
    99
  in
  (match Cache.find_or_compute c "k" ~bytes_of:(fun _ -> 8) compute with
  | `Computed v -> Alcotest.(check int) "computed value" 99 v
  | _ -> Alcotest.fail "first call must compute");
  (match Cache.find_or_compute c "k" ~bytes_of:(fun _ -> 8) compute with
  | `Hit v -> Alcotest.(check int) "hit value" 99 v
  | _ -> Alcotest.fail "second call must hit");
  Alcotest.(check int) "compute ran once" 1 !runs;
  (* A failing compute leaves no entry behind. *)
  (try
     ignore
       (Cache.find_or_compute c "boom" ~bytes_of:(fun _ -> 8) (fun () ->
            failwith "no"))
   with Failure _ -> ());
  Alcotest.(check (option int)) "failed compute not stored" None
    (Cache.find c "boom")

(* Worker pool ----------------------------------------------------------- *)

let test_pool_runs_jobs () =
  let pool = Pool.create ~workers:1 ~queue_capacity:16 () in
  let mu = Mutex.create () in
  let hits = ref 0 in
  let bump () =
    Mutex.lock mu;
    incr hits;
    Mutex.unlock mu
  in
  for _ = 1 to 10 do
    match Pool.submit pool bump with
    | `Queued -> ()
    | `Rejected | `Stopping -> Alcotest.fail "submit refused below capacity"
  done;
  Pool.drain pool;
  Alcotest.(check int) "all jobs ran" 10 !hits;
  Pool.shutdown pool;
  Alcotest.(check bool)
    "submit after shutdown is stopping" true
    (match Pool.submit pool (fun () -> ()) with
    | `Stopping -> true
    | `Queued | `Rejected -> false)

let test_pool_backpressure () =
  let pool = Pool.create ~workers:1 ~queue_capacity:2 () in
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let release = ref false in
  let blocker () =
    Mutex.lock gate;
    while not !release do
      Condition.wait cond gate
    done;
    Mutex.unlock gate
  in
  (* First job occupies the worker; the queue then fills to capacity
     and the next submit must be rejected, not block or queue. *)
  Alcotest.(check bool)
    "blocker queued" true
    (Pool.submit pool blocker = `Queued);
  (* Wait for the worker to pick the blocker up so queue slots free. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Pool.queue_depth pool > 0 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "fill 1" true (Pool.submit pool (fun () -> ()) = `Queued);
  Alcotest.(check bool) "fill 2" true (Pool.submit pool (fun () -> ()) = `Queued);
  Alcotest.(check bool)
    "over capacity is rejected" true
    (Pool.submit pool (fun () -> ()) = `Rejected);
  Alcotest.(check bool) "in flight counts" true (Pool.in_flight pool >= 3);
  Mutex.lock gate;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock gate;
  Pool.drain pool;
  Alcotest.(check int) "drained" 0 (Pool.in_flight pool);
  Pool.shutdown pool

(* Runner ----------------------------------------------------------------- *)

let () =
  Alcotest.run "wa_service"
    [
      ( "protocol",
        List.map QCheck_alcotest.to_alcotest
          [ prop_request_roundtrip; prop_response_roundtrip ]
        @ [
            Alcotest.test_case "malformed requests rejected" `Quick
              test_malformed_requests;
            Alcotest.test_case "malformed responses rejected" `Quick
              test_malformed_responses;
            Alcotest.test_case "id recovery" `Quick test_id_recovery;
          ] );
      ( "cache",
        [
          Alcotest.test_case "content key" `Quick test_content_key;
          Alcotest.test_case "cached plan = fresh plan" `Quick
            test_cached_plan_equals_fresh;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "byte bound" `Quick test_cache_byte_bound;
          Alcotest.test_case "find_or_compute" `Quick
            test_cache_find_or_compute;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs jobs" `Quick test_pool_runs_jobs;
          Alcotest.test_case "backpressure" `Quick test_pool_backpressure;
        ] );
    ]
