(* Smoke coverage of the experiment harness: every registered
   experiment must run (quick mode), produce a non-empty table, and be
   addressable through the registry. *)

module Experiments = Wa_experiments.Experiments
module Table = Wa_util.Table

let test_registry_ids_unique () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_covers_design_index () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has " ^ expected) true (List.mem expected ids))
    [
      "F1"; "F2"; "F3"; "F4"; "F5"; "T1"; "T2"; "T3"; "T4"; "T5"; "T6"; "T7";
      "T8"; "T9"; "T10"; "T11"; "T12"; "T13"; "T14"; "T15"; "T16"; "T17";
      "T18"; "T19"; "T20"; "T21";
    ]

let test_find_case_insensitive () =
  (match Experiments.find "t1" with
  | Some e -> Alcotest.(check string) "found" "T1" e.Experiments.id
  | None -> Alcotest.fail "t1 not found");
  Alcotest.(check bool) "unknown" true (Experiments.find "Z9" = None)

let run_quick (e : Experiments.t) () =
  let table = e.Experiments.run ~quick:true in
  Alcotest.(check bool)
    (e.Experiments.id ^ " has rows")
    true
    (List.length (Table.rows table) > 0);
  match Table.title table with
  | Some t -> Alcotest.(check bool) "titled" true (String.length t > 0)
  | None -> Alcotest.fail "untitled table"

let () =
  Alcotest.run "wa_experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "covers index" `Quick test_registry_covers_design_index;
          Alcotest.test_case "find" `Quick test_find_case_insensitive;
        ] );
      ( "quick runs",
        List.map
          (fun e ->
            Alcotest.test_case e.Experiments.id `Quick (run_quick e))
          Experiments.all );
    ]
