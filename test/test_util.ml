module Rng = Wa_util.Rng
module Lf = Wa_util.Logfloat
module Growth = Wa_util.Growth
module Stats = Wa_util.Stats
module Table = Wa_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float_range r 2.0 3.0 in
    Alcotest.(check bool) "in [2,3)" true (v >= 2.0 && v < 3.0)
  done

let test_rng_copy_independent () =
  let a = Rng.create 11 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split () =
  let a = Rng.create 13 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)))

let test_rng_shuffle_permutes () =
  let r = Rng.create 17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_gaussian_moments () =
  let r = Rng.create 19 in
  let n = 20000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian r in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_rng_bool_balanced () =
  let r = Rng.create 23 in
  let trues = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly fair" true (!trues > 4500 && !trues < 5500)

let test_rng_pick () =
  let r = Rng.create 29 in
  let a = [| 3; 5; 9 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.pick r a) a)
  done

(* ------------------------------------------------------------- Logfloat *)

let lf = Alcotest.testable Lf.pp Lf.equal

let check_rel name expected actual =
  let tol = 1e-12 *. Float.max 1.0 (Float.abs expected) in
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g" name expected actual

let test_lf_roundtrip () =
  List.iter
    (fun v -> check_rel "roundtrip" v (Lf.to_float (Lf.of_float v)))
    [ 0.0; 1.0; 0.5; 42.0; 1e-30; 1e30 ]

let test_lf_add () =
  check_float "2+3" 5.0 (Lf.to_float (Lf.add (Lf.of_float 2.0) (Lf.of_float 3.0)));
  Alcotest.check lf "0+x" (Lf.of_float 7.0) (Lf.add Lf.zero (Lf.of_float 7.0))

let test_lf_sub () =
  check_float "5-3" 2.0 (Lf.to_float (Lf.sub (Lf.of_float 5.0) (Lf.of_float 3.0)));
  Alcotest.(check bool) "x-x=0" true (Lf.is_zero (Lf.sub (Lf.of_float 5.0) (Lf.of_float 5.0)));
  Alcotest.check_raises "negative result"
    (Invalid_argument "Logfloat.sub: result would be negative") (fun () ->
      ignore (Lf.sub (Lf.of_float 1.0) (Lf.of_float 2.0)))

let test_lf_mul_div () =
  check_float "6*7" 42.0 (Lf.to_float (Lf.mul (Lf.of_float 6.0) (Lf.of_float 7.0)));
  check_float "42/6" 7.0 (Lf.to_float (Lf.div (Lf.of_float 42.0) (Lf.of_float 6.0)));
  Alcotest.(check bool) "0*x" true (Lf.is_zero (Lf.mul Lf.zero (Lf.of_float 3.0)));
  Alcotest.check_raises "x/0" Division_by_zero (fun () ->
      ignore (Lf.div (Lf.of_float 1.0) Lf.zero))

let test_lf_pow () =
  check_float "2^10" 1024.0 (Lf.to_float (Lf.pow (Lf.of_float 2.0) 10.0));
  check_float "x^0" 1.0 (Lf.to_float (Lf.pow (Lf.of_float 9.0) 0.0));
  check_float "0^0" 1.0 (Lf.to_float (Lf.pow Lf.zero 0.0));
  Alcotest.(check bool) "0^2" true (Lf.is_zero (Lf.pow Lf.zero 2.0))

let test_lf_huge () =
  (* Values far beyond float range still compare correctly. *)
  let a = Lf.pow (Lf.of_float 10.0) 500.0 in
  let b = Lf.pow (Lf.of_float 10.0) 501.0 in
  Alcotest.(check bool) "10^500 < 10^501" true (Lf.( < ) a b);
  check_float "ratio" 10.0 (Lf.to_float (Lf.div b a));
  Alcotest.(check bool) "overflows to_float" true
    (Float.is_integer (Lf.to_float a) = false || Lf.to_float a = infinity)

let test_lf_sum () =
  check_float "sum" 10.0
    (Lf.to_float (Lf.sum [ Lf.of_float 1.0; Lf.of_float 2.0; Lf.of_float 3.0; Lf.of_float 4.0 ]));
  Alcotest.(check bool) "empty sum" true (Lf.is_zero (Lf.sum []))

let test_lf_compare () =
  Alcotest.(check bool) "1 < 2" true (Lf.( < ) Lf.one (Lf.of_float 2.0));
  Alcotest.(check bool) "0 <= 0" true (Lf.( <= ) Lf.zero Lf.zero);
  Alcotest.check lf "min" Lf.one (Lf.min Lf.one (Lf.of_float 3.0));
  Alcotest.check lf "max" (Lf.of_float 3.0) (Lf.max Lf.one (Lf.of_float 3.0))

let test_lf_of_float_rejects () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Logfloat.of_float: negative or NaN") (fun () ->
      ignore (Lf.of_float (-1.0)))

let lf_qcheck =
  let pos_float = QCheck.float_range 1e-6 1e6 in
  [
    QCheck.Test.make ~count:300 ~name:"logfloat add commutes"
      (QCheck.pair pos_float pos_float) (fun (a, b) ->
        Lf.equal (Lf.add (Lf.of_float a) (Lf.of_float b))
          (Lf.add (Lf.of_float b) (Lf.of_float a)));
    QCheck.Test.make ~count:300 ~name:"logfloat mul/div inverse"
      (QCheck.pair pos_float pos_float) (fun (a, b) ->
        let r = Lf.div (Lf.mul (Lf.of_float a) (Lf.of_float b)) (Lf.of_float b) in
        Float.abs (Lf.to_float r -. a) <= 1e-9 *. a);
    QCheck.Test.make ~count:300 ~name:"logfloat add matches floats"
      (QCheck.pair pos_float pos_float) (fun (a, b) ->
        let r = Lf.to_float (Lf.add (Lf.of_float a) (Lf.of_float b)) in
        Float.abs (r -. (a +. b)) <= 1e-9 *. (a +. b));
    QCheck.Test.make ~count:300 ~name:"logfloat order matches floats"
      (QCheck.pair pos_float pos_float) (fun (a, b) ->
        Lf.compare (Lf.of_float a) (Lf.of_float b) = Float.compare a b);
  ]

(* --------------------------------------------------------------- Growth *)

let test_log_star () =
  Alcotest.(check int) "log* 1" 0 (Growth.log_star 1.0);
  Alcotest.(check int) "log* 2" 1 (Growth.log_star 2.0);
  Alcotest.(check int) "log* 4" 2 (Growth.log_star 4.0);
  Alcotest.(check int) "log* 16" 3 (Growth.log_star 16.0);
  Alcotest.(check int) "log* 65536" 4 (Growth.log_star 65536.0);
  Alcotest.(check int) "log* 2^300" 5 (Growth.log_star (2.0 ** 300.0))

let test_log_log () =
  check_float "loglog 16" 2.0 (Growth.log_log 16.0);
  check_float "loglog 2" 0.0 (Growth.log_log 2.0);
  check_float "loglog below 2" 0.0 (Growth.log_log 1.5)

let test_ilog2 () =
  Alcotest.(check int) "ilog2 1" 0 (Growth.ilog2 1);
  Alcotest.(check int) "ilog2 2" 1 (Growth.ilog2 2);
  Alcotest.(check int) "ilog2 3" 1 (Growth.ilog2 3);
  Alcotest.(check int) "ilog2 1024" 10 (Growth.ilog2 1024);
  Alcotest.check_raises "ilog2 0" (Invalid_argument "Growth.ilog2: n must be >= 1")
    (fun () -> ignore (Growth.ilog2 0))

let test_tower () =
  check_float "tower 0" 1.0 (Growth.tower 0);
  check_float "tower 1" 2.0 (Growth.tower 1);
  check_float "tower 2" 4.0 (Growth.tower 2);
  check_float "tower 3" 16.0 (Growth.tower 3);
  check_float "tower 4" 65536.0 (Growth.tower 4);
  Alcotest.(check bool) "tower 6 saturates" true (Growth.tower 6 = infinity)

let test_tower_log_star_inverse () =
  (* log*(tower k) = k for the finite tower levels. *)
  List.iter
    (fun k -> Alcotest.(check int) "inverse" k (Growth.log_star (Growth.tower k)))
    [ 0; 1; 2; 3; 4 ]

(* ---------------------------------------------------------------- Stats *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "mean" 3.0 s.Stats.mean;
  check_float "median" 3.0 s.Stats.median;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  Alcotest.(check int) "count" 5 s.Stats.count;
  check_float "stddev" (sqrt 2.5) s.Stats.stddev

let test_stats_singleton () =
  let s = Stats.summarize [ 42.0 ] in
  check_float "mean" 42.0 s.Stats.mean;
  check_float "stddev" 0.0 s.Stats.stddev

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100" 40.0 (Stats.percentile 100.0 xs);
  check_float "p50" 25.0 (Stats.percentile 50.0 xs)

let test_stats_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean []))

(* ---------------------------------------------------------------- Table *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"demo" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true (contains out "== demo ==");
  Alcotest.(check bool) "has separator" true (contains out "---");
  Alcotest.(check int) "rows kept" 2 (List.length (Table.rows t))

let test_table_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch with header")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_left_align () =
  let t = Table.create [ "name"; "v" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bbbb"; "2" ];
  let out = Table.render ~align:Table.Left t in
  Alcotest.(check bool) "left-padded" true (contains out "a    ");
  let right = Table.render ~align:Table.Right t in
  Alcotest.(check bool) "right-padded" true (contains right "   a")

let test_lf_zero_extremes () =
  Alcotest.(check bool) "min with zero" true (Lf.is_zero (Lf.min Lf.zero Lf.one));
  Alcotest.(check bool) "max with zero" true (Lf.equal Lf.one (Lf.max Lf.zero Lf.one));
  Alcotest.(check bool) "zero <= all" true (Lf.( <= ) Lf.zero (Lf.of_float 1e-300))

let test_table_rowf () =
  let t = Table.create [ "x"; "y" ] in
  Table.add_rowf t "%d\t%.2f" 3 1.5;
  Alcotest.(check (list (list string))) "split on tab" [ [ "3"; "1.50" ] ] (Table.rows t)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest lf_qcheck in
  Alcotest.run "wa_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int rejects nonpositive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "logfloat",
        [
          Alcotest.test_case "roundtrip" `Quick test_lf_roundtrip;
          Alcotest.test_case "add" `Quick test_lf_add;
          Alcotest.test_case "sub" `Quick test_lf_sub;
          Alcotest.test_case "mul/div" `Quick test_lf_mul_div;
          Alcotest.test_case "pow" `Quick test_lf_pow;
          Alcotest.test_case "huge values" `Quick test_lf_huge;
          Alcotest.test_case "sum" `Quick test_lf_sum;
          Alcotest.test_case "compare" `Quick test_lf_compare;
          Alcotest.test_case "of_float rejects" `Quick test_lf_of_float_rejects;
          Alcotest.test_case "zero extremes" `Quick test_lf_zero_extremes;
        ]
        @ qc );
      ( "growth",
        [
          Alcotest.test_case "log_star" `Quick test_log_star;
          Alcotest.test_case "log_log" `Quick test_log_log;
          Alcotest.test_case "ilog2" `Quick test_ilog2;
          Alcotest.test_case "tower" `Quick test_tower;
          Alcotest.test_case "tower/log* inverse" `Quick test_tower_log_star_inverse;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "rowf" `Quick test_table_rowf;
          Alcotest.test_case "alignment" `Quick test_table_left_align;
        ] );
    ]
