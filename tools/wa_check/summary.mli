(** Whole-program summary engine behind [Check].

    [Check] extracts serializable per-unit facts from the Typedtrees;
    this module builds the call graph, runs the bottom-up fixpoint
    over its strongly connected components (Tarjan, callees first),
    maintains the global record-field invariant table, and owns the
    on-disk cache keyed by [.cmt] digest.  Allocation / may-raise /
    write-footprints are least fixpoints; returns-positive is a
    greatest fixpoint (sound for terminating functions, and what
    proves positivity through mutual recursion). *)

module SSet : Set.S with type elt = string

type bound = { lb : float; strict : bool }
(** A float lower bound: value [>= lb], or [> lb] when [strict]. *)

val meet_bound : bound option -> bound option -> bound option
(** Weakest claim of two construction sites; [None] (no information)
    absorbs. *)

val bound_positive : bound option -> bool
(** The bound proves the value nonzero (positive). *)

type call = {
  c_callee : string;  (** Resolved dotted name of the callee. *)
  c_args : (int * int) list;
      (** Callee argument position -> caller parameter index, for the
          arguments that are direct parameter references. *)
  c_caught : string list;
      (** Exception constructors an enclosing [try] catches at this
          call site; ["*"] for a catch-all pattern. *)
  c_held : string list;
      (** Lock keys held at the call site (sorted), from enclosing
          [Mutex.protect] / lock wrappers / lock–unlock sequences. *)
  c_deferred : bool;
      (** The call happens inside a closure handed to [Pool.submit] /
          [Domain.spawn] / a [Parallel] entry: it runs on another
          domain, so it neither blocks the caller nor inherits its
          locks. *)
}

type fn_fact = {
  f_fq : string;
  f_params : string list;
  f_line : int;
  f_col : int;
  f_hot : bool;
  f_alloc : string option;
  f_raises : string list;
  f_global_writes : string list;
  f_param_writes : int list;
  f_pos : bool;
  f_pos_deps : string list option;
  f_preconds : string list;
  f_dom : string;
  f_calls : call list;
  f_event_loop : bool;  (** Annotated [[@wa.event_loop]]. *)
  f_block : string option;
      (** [Some reason] when the body reaches a blocking primitive
          directly (or is marked [[@wa.compute]]). *)
  f_locks : string list;  (** Lock keys this function acquires. *)
  f_lock_edges : (string * string * int) list;
      (** [(held, acquired, line)]: nested-acquisition sites. *)
  f_requires : (string * string) list;
      (** [(lock, witness)]: guarded state touched without the lock;
          discharged at call sites that hold it. *)
  f_guarded : int;  (** Guarded accesses certified lock-held. *)
}
(** Direct (intraprocedural) facts about one function, as extracted by
    [Check]; every field is serializable. *)

type field_fact = {
  r_type : string;
  r_field : string;
  r_bound : bound option;
}
(** Field bound observed at one record construction site. *)

type unit_facts = {
  u_path : string;
  u_src : string;
  u_digest : string;
  u_fns : fn_fact list;
  u_fields : field_fact list;
}

type fn_summary = {
  s_fq : string;
  s_params : string list;
  s_line : int;
  s_col : int;
  s_hot : bool;
  s_alloc : string option;
      (** [Some chain] when the function may allocate, with the
          allocating call chain spelled out. *)
  s_raises : SSet.t;  (** Escaping exception constructors, transitive. *)
  s_global_writes : string list;  (** Transitive, with call chains. *)
  s_param_writes : int list;  (** Transitive parameter indices. *)
  s_pos : bool;  (** Returns a provably nonzero float. *)
  s_preconds : string list;
      (** Parameters that must be positive (the function divides by
          them); discharged at call sites. *)
  s_dom : string;  (** Result unit-domain name. *)
  s_callers : int;  (** In-tree call sites targeting this function. *)
  s_event_loop : bool;
  s_block : string option;
      (** [Some chain] when a blocking primitive is transitively
          reachable outside deferred closures, chain spelled out. *)
  s_locks : (string * string) list;
      (** [(lock, via)]: locks transitively acquired, with the call
          chain that reaches the acquisition. *)
  s_requires : (string * string) list;
      (** [(lock, witness)]: lock requirements no analyzed call path
          discharges; a violation when [s_callers = 0]. *)
}

type table

val empty_table : unit -> table
val find : table -> string -> fn_summary option

val lookup : table -> string -> fn_summary option
(** [find], falling back to a last-two-components suffix match when it
    is unique (module aliases leave call sites with short paths). *)

val field_bound : table -> type_fq:string -> field:string -> bound option
(** Global invariant of a record field: the meet over every
    construction site in the program (with the same suffix fallback as
    {!lookup}). *)

val solve : unit_facts list -> table
(** Build the call graph and run every fixpoint. *)

val sccs : string list -> (string -> string list) -> string list list
(** Tarjan SCCs of an arbitrary string graph, callees-first; exposed
    for [Check]'s lock-order cycle detection. *)

(** {1 Cache} *)

val digest_file : string -> string

type cached_unit = {
  cu_facts : unit_facts;
  cu_report : Wa_util.Json.t;
      (** The per-unit diagnostic report, opaque to this module. *)
}

type cache = { c_units : cached_unit list }

val load_cache : string -> cache option
(** [None] on missing file, parse error, or version mismatch. *)

val save_cache : string -> cache -> bool

type cache_stats = { st_units : int; st_hits : int; st_warm : bool }

val stats_to_json : cache_stats -> Wa_util.Json.t
