(* Command-line front end:
   wa_check [--json FILE] [--quiet] [--stats] [--list-rules] PATH...

   PATHs are .cmt files or directories searched recursively (including
   dune's hidden .objs directories).  Exit status: 0 clean, 1
   violations found, 2 usage/setup error. *)

module Check = Wa_check_core.Check

let usage = "wa_check [--json FILE] [--quiet] [--stats] [--list-rules] PATH..."

let () =
  let json_out = ref None in
  let quiet = ref false in
  let stats = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE Write the machine-readable report to FILE" );
      ("--quiet", Arg.Set quiet, " Print nothing but the verdict line");
      ( "--stats",
        Arg.Set stats,
        " Print analyzed closure/expression counts (coverage)" );
      ("--list-rules", Arg.Set list_rules, " Print the rule names and exit");
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with _ -> exit 2);
  if !list_rules then begin
    List.iter print_endline Check.all_rules;
    exit 0
  end;
  let paths = List.rev !paths in
  if List.is_empty paths then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "wa_check: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let report = Check.analyze_paths paths in
  if not !quiet then
    List.iter
      (fun v -> Format.printf "%a@." Check.pp_violation v)
      report.Check.violations;
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Wa_util.Json.to_string (Check.report_to_json report));
      output_char oc '\n';
      close_out oc)
    !json_out;
  if !stats then
    Printf.printf
      "wa_check stats: %d closure(s) analyzed, %d expression(s) visited\n"
      report.Check.closures_analyzed report.Check.expressions_analyzed;
  let n = List.length report.Check.violations in
  Printf.printf "wa_check: %d file(s), %d violation(s)\n"
    report.Check.files_scanned n;
  if n > 0 then exit 1
