(* Command-line front end:
   wa_check [--json FILE] [--cache FILE] [--cache-stats FILE] [--quiet]
            [--stats] [--list-rules] PATH...

   PATHs are .cmt files or directories searched recursively (including
   dune's hidden .objs directories).  With --cache, per-unit facts and
   reports are keyed by .cmt digest in FILE: a fully-warm run rebuilds
   the report without loading a single Typedtree.  Exit status: 0
   clean, 1 violations found, 2 usage/setup error. *)

module Check = Wa_check_core.Check
module Summary = Wa_check_core.Summary

let usage =
  "wa_check [--json FILE] [--cache FILE] [--cache-stats FILE] [--quiet] \
   [--stats] [--list-rules] PATH..."

let () =
  let json_out = ref None in
  let cache = ref None in
  let cache_stats_out = ref None in
  let quiet = ref false in
  let stats = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE Write the machine-readable report to FILE" );
      ( "--cache",
        Arg.String (fun f -> cache := Some f),
        "FILE Read/write the per-unit summary cache keyed by .cmt digest" );
      ( "--cache-stats",
        Arg.String (fun f -> cache_stats_out := Some f),
        "FILE Write cache hit statistics (units/hits/misses/warm) to FILE" );
      ("--quiet", Arg.Set quiet, " Print nothing but the verdict line");
      ( "--stats",
        Arg.Set stats,
        " Print analyzed closure/expression counts (coverage)" );
      ("--list-rules", Arg.Set list_rules, " Print the rule names and exit");
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with _ -> exit 2);
  if !list_rules then begin
    List.iter print_endline Check.all_rules;
    exit 0
  end;
  let paths = List.rev !paths in
  if List.is_empty paths then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "wa_check: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let report, cstats = Check.analyze_program ?cache:!cache paths in
  if not !quiet then
    List.iter
      (fun v -> Format.printf "%a@." Check.pp_violation v)
      report.Check.violations;
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Wa_util.Json.to_string (Check.report_to_json report));
      output_char oc '\n';
      close_out oc)
    !json_out;
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Wa_util.Json.to_string (Summary.stats_to_json cstats));
      output_char oc '\n';
      close_out oc)
    !cache_stats_out;
  if !stats then
    Printf.printf
      "wa_check stats: %d closure(s) analyzed, %d expression(s) visited, %d \
       guarded access(es) certified, %d event-loop root(s) certified, %d/%d \
       cache hit(s)%s\n"
      report.Check.closures_analyzed report.Check.expressions_analyzed
      report.Check.guarded_accesses report.Check.event_loop_roots
      cstats.Summary.st_hits cstats.Summary.st_units
      (if cstats.Summary.st_warm then " (warm)" else "")
  else if !cache <> None && not !quiet then
    Printf.printf "wa_check cache: %d/%d hit(s)%s\n" cstats.Summary.st_hits
      cstats.Summary.st_units
      (if cstats.Summary.st_warm then " (warm)" else "");
  let n = List.length report.Check.violations in
  Printf.printf "wa_check: %d file(s), %d violation(s)\n"
    report.Check.files_scanned n;
  if n > 0 then exit 1
