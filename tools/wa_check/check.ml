(* Typed-AST semantic analysis for the wireless_agg tree.

   Where wa_lint is deliberately syntactic (Parsetree, no types), this
   analyzer loads the .cmt files dune already produces and walks the
   Typedtree, so every rule below sees resolved paths and inferred
   types.  Four passes:

   - [domain-capture]: for every closure reaching
     [Wa_util.Parallel.{iter,init,map_array,fold_float_max}], compute
     the capture set from the Typedtree and reject writes to captured
     refs ([:=], [incr], [decr]), mutable record fields ([<-]),
     arrays ([Array.set], [a.(i) <- v]) and mutating container calls
     ([Hashtbl.replace], [Buffer.add_*], ...) on free variables of
     the closure — unsynchronized mutable state shared across worker
     domains.  [Atomic.t] state is exempt, as are whitelisted sites
     ([lib/obs/], [lib/util/parallel.ml] by default, where the
     disjoint-write and per-domain-buffer invariants are documented).
   - [unit-mix]: a small abstract interpretation over the lattice
     {power, distance, distance^alpha, gain, log-domain,
     dimensionless, unknown} seeded from declared sources
     ([Power.value], [Linkset.length], [Logfloat.log_value], [log],
     [Params] fields, ...).  Flags additions/subtractions and
     comparisons that mix the log domain with a linear quantity,
     additions of distinct linear quantities (power + distance),
     log-domain floats passed to a linear [~power:] argument, and
     misuse of the [Logfloat.of_log]/[of_float] boundary.
   - [float-unguarded]: on configured hot paths, a division / [log] /
     [sqrt] whose denominator/argument is not provably nonzero —
     positive-by-construction sources ([Linkset.length]: zero-length
     links are rejected at [Link.make]; validated [Params] fields),
     nonzero literals, products/powers of those, or operands whose
     identifiers are tested by an enclosing [if]/[when] guard (or by a
     preceding [if ... then raise]-style check in the same sequence).
   - [nan-compare]: the same unguarded NaN-producing shapes appearing
     inside a comparator closure passed to [List.sort] /
     [Array.sort] / [sort_uniq] — NaN keys silently corrupt order.
   - [exn-escape]: a syntactic raise ([raise], [failwith],
     [invalid_arg], [assert]) inside a [Parallel] chunk closure with
     no enclosing [try] inside that closure: the exception crosses the
     chunk boundary and kills the fan-out on a worker domain.

   The analysis is intraprocedural: closure bodies are analyzed as
   written; calls into other functions are not followed.  Suppress
   with [[@wa.check.allow "rule ..."]] on the offending expression (or
   any enclosing one), or a floating [[@@@wa.check.allow "rule ..."]]
   for the whole file. *)

module Json = Wa_util.Json

(* Rules ------------------------------------------------------------- *)

let rule_domain_capture = "domain-capture"
let rule_unit_mix = "unit-mix"
let rule_float_unguarded = "float-unguarded"
let rule_nan_compare = "nan-compare"
let rule_exn_escape = "exn-escape"
let rule_cmt_error = "cmt-error"

let all_rules =
  [
    rule_domain_capture;
    rule_unit_mix;
    rule_float_unguarded;
    rule_nan_compare;
    rule_exn_escape;
    rule_cmt_error;
  ]

(* Configuration ------------------------------------------------------ *)

module Config = struct
  type t = {
    hot_paths : string list;
    capture_allowed : string list;
    positive_sources : (string * string) list;
    positive_maps : (string * string) list;
  }

  let default =
    {
      hot_paths = [ "lib/sinr/"; "lib/core/conflict.ml" ];
      capture_allowed = [ "lib/obs/"; "lib/util/parallel.ml" ];
      positive_sources =
        [
          (* Link.make rejects zero-length links, so every length
             derived from a linkset is strictly positive. *)
          ("Linkset", "length");
          ("Linkset", "min_length");
          ("Linkset", "max_length");
          ("Linkset", "diversity");
          (* The flat views expose the same validated lengths (and
             their alpha-powers) as arrays. *)
          ("Linkset", "lengths");
          ("Linkset", "lengths_pow");
          ("Link", "length");
          ("Link_index", "class_min_length");
          ("Link_index", "class_max_length");
          (* Power.value / Power.vector validate positivity (custom
             vectors via check_custom, oblivious schemes by
             construction). *)
          ("Power", "value");
          ("Power", "vector");
          ("Power", "oblivious_constant");
        ];
      positive_maps =
        [
          (* x^alpha is positive for positive x whatever the exponent;
             partial applications bound to a local name are tracked so
             [let pow = Params.alpha_pow p in ... pow d] inherits the
             guarantee from a guarded [d]. *)
          ("Params", "alpha_pow");
        ];
    }
end

(* Violations and reports (same schema as wa_lint, plus coverage) ----- *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let equal_violation a b =
  String.equal a.file b.file && a.line = b.line && a.col = b.col
  && String.equal a.rule b.rule
  && String.equal a.message b.message

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp_violation fmt v =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

let violation_to_json v =
  Json.Obj
    [
      ("file", Json.String v.file);
      ("line", Json.Int v.line);
      ("col", Json.Int v.col);
      ("rule", Json.String v.rule);
      ("message", Json.String v.message);
    ]

let violation_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match (str "file", int "line", int "col", str "rule", str "message") with
  | Some file, Some line, Some col, Some rule, Some message ->
      Ok { file; line; col; rule; message }
  | _ -> Error "violation_of_json: missing or ill-typed field"

type report = {
  files_scanned : int;
  closures_analyzed : int;
  expressions_analyzed : int;
  violations : violation list;
}

let report_to_json r =
  Json.Obj
    [
      ("tool", Json.String "wa_check");
      ("version", Json.Int 1);
      ("files_scanned", Json.Int r.files_scanned);
      ("closures_analyzed", Json.Int r.closures_analyzed);
      ("expressions_analyzed", Json.Int r.expressions_analyzed);
      ("violation_count", Json.Int (List.length r.violations));
      ("violations", Json.List (List.map violation_to_json r.violations));
    ]

let report_of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match
    ( int "files_scanned",
      int "closures_analyzed",
      int "expressions_analyzed",
      Json.member "violations" j )
  with
  | Some files_scanned, Some closures_analyzed, Some expressions_analyzed,
    Some (Json.List vs) ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match violation_of_json v with
            | Ok v -> collect (v :: acc) rest
            | Error _ as e -> e)
      in
      Result.map
        (fun violations ->
          { files_scanned; closures_analyzed; expressions_analyzed; violations })
        (collect [] vs)
  | _ -> Error "report_of_json: missing files_scanned/stats/violations"

(* Path helpers ------------------------------------------------------- *)

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let path_matches ~prefixes path =
  let path = normalize_path path in
  List.exists
    (fun prefix ->
      let prefix = normalize_path prefix in
      String.length path >= String.length prefix
      && String.sub path 0 (String.length prefix) = prefix)
    prefixes

(* Resolved-path helpers ---------------------------------------------- *)

(* Split a compilation-unit name mangled by dune's module wrapping:
   "Wa_util__Parallel" -> ["Wa_util"; "Parallel"]. *)
let split_wrapped s =
  let n = String.length s in
  let rec go acc start i =
    if i + 1 >= n then List.rev (String.sub s start (n - start) :: acc)
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (String.sub s start (i - start) :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  go [] 0 0 |> List.filter (fun x -> x <> "")

let rec path_parts = function
  | Path.Pident id -> split_wrapped (Ident.name id)
  | Path.Pdot (p, s) -> path_parts p @ [ s ]
  | Path.Papply (p, _) -> path_parts p
  | Path.Pextra_ty (p, _) -> path_parts p

(* (enclosing module, name): ["Wa_sinr"; "Linkset"; "length"] gives
   (Some "Linkset", "length"); a bare "log" gives (None, "log") with
   "Stdlib" qualifiers stripped. *)
let last2 parts =
  match List.rev parts with
  | [] -> (None, "")
  | [ v ] -> (None, v)
  | v :: "Stdlib" :: _ -> (None, v)
  | v :: m :: _ -> (Some m, v)

open Typedtree

let fn_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let fn_last2 e = Option.map (fun p -> last2 (path_parts p)) (fn_path e)

let matches_table table e =
  match fn_last2 e with
  | Some (Some m, v) -> List.mem (m, v) table
  | _ -> false

let is_stdlib_fn names e =
  match fn_last2 e with
  | Some (None, v) -> List.mem v names
  | Some (Some "Float", v) -> List.mem v names
  | _ -> false

(* Type-head inspection ----------------------------------------------- *)

let type_last2 ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (last2 (path_parts p))
  | _ -> None

let is_atomic_type ty =
  match type_last2 ty with Some (Some "Atomic", "t") -> true | _ -> false

let is_arrow_type ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let is_float_type ty =
  match type_last2 ty with Some (None, "float") -> true | _ -> false

(* Suppressions ------------------------------------------------------- *)

let allows_of_payload = function
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( {
                  pexp_desc =
                    Pexp_constant (Parsetree.Pconst_string (s, _, _));
                  _;
                },
                _ );
          _;
        };
      ] ->
      String.split_on_char ' ' s |> List.filter (fun x -> x <> "")
  | _ -> []

let allows_of_attrs attrs =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt "wa.check.allow" then
        allows_of_payload a.attr_payload
      else [])
    attrs

(* Analysis context --------------------------------------------------- *)

type ctx = {
  cfg : Config.t;
  src : string;
  self_module : string;
      (* Module defined by [src]: self-references to positive sources
         carry no module qualifier inside their own module. *)
  hot : bool;
  capture_ok : bool;
  file_allows : string list;
  mutable allow_stack : string list;
  mutable found : violation list;
  mutable closures : int;
  mutable exprs : int;
}

let flag ctx loc rule message =
  if
    (not (List.mem rule ctx.file_allows))
    && not (List.mem rule ctx.allow_stack)
  then
    let pos = loc.Location.loc_start in
    ctx.found <-
      {
        file = ctx.src;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        rule;
        message;
      }
      :: ctx.found

(* Run [f] with the allow-list of [attrs] pushed: suppressions on an
   enclosing expression cover everything beneath it. *)
let with_allows ctx attrs f =
  match allows_of_attrs attrs with
  | [] -> f ()
  | allows ->
      let saved = ctx.allow_stack in
      ctx.allow_stack <- allows @ saved;
      Fun.protect ~finally:(fun () -> ctx.allow_stack <- saved) f

(* Generic child traversal: applies [f] to every direct subexpression
   of [e] (descending through cases, bindings, etc. exactly once). *)
let iter_children f e =
  let open Tast_iterator in
  let it = { default_iterator with expr = (fun _ e -> f e) } in
  default_iterator.expr it e

(* Local (Pident) identifier occurrences anywhere inside [e0]. *)
let idents_in e0 =
  let acc = ref [] in
  let rec go e =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> acc := Ident.unique_name id :: !acc
    | _ -> ());
    iter_children go e
  in
  go e0;
  !acc

(* Pass 1 + 4: domain-capture and exn-escape -------------------------- *)

let parallel_entries = [ "iter"; "init"; "map_array"; "fold_float_max"; "map" ]

let is_parallel_entry e =
  match fn_last2 e with
  | Some (Some "Parallel", v) -> List.mem v parallel_entries
  | _ -> false

let raise_like = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let array_set_fns =
  [
    ("Array", "set"); ("Array", "unsafe_set"); ("Bytes", "set");
    ("Bytes", "unsafe_set");
  ]

let container_mut_fns =
  [
    ("Hashtbl", "add"); ("Hashtbl", "replace"); ("Hashtbl", "remove");
    ("Hashtbl", "reset"); ("Hashtbl", "clear");
    ("Buffer", "add_char"); ("Buffer", "add_string"); ("Buffer", "add_bytes");
    ("Buffer", "add_buffer"); ("Buffer", "clear"); ("Buffer", "reset");
    ("Queue", "add"); ("Queue", "push"); ("Queue", "pop"); ("Queue", "take");
    ("Queue", "clear"); ("Queue", "transfer");
    ("Stack", "push"); ("Stack", "pop"); ("Stack", "clear");
  ]

(* Idents bound anywhere inside [e0] (params, lets, match cases, for
   indices): everything else referenced from inside is captured. *)
let bound_idents e0 =
  let tbl = Hashtbl.create 32 in
  let add id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let add_pat p = List.iter add (pat_bound_idents p) in
  let rec go e =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) -> List.iter (fun vb -> add_pat vb.vb_pat) vbs
    | Texp_function { param; cases; _ } ->
        add param;
        List.iter (fun c -> add_pat c.c_lhs) cases
    | Texp_match (_, cases, _) -> List.iter (fun c -> add_pat c.c_lhs) cases
    | Texp_try (_, cases) -> List.iter (fun c -> add_pat c.c_lhs) cases
    | Texp_for (id, _, _, _, _, _) -> add id
    | _ -> ());
    iter_children go e
  in
  go e0;
  tbl

(* The variable ultimately written through an lvalue-ish expression:
   [x], [x.contents], [x.(i)], [!x] chains. *)
let rec head_ident e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (e, id)
  | Texp_field (inner, _, _) -> head_ident inner
  | Texp_apply (f, args) when matches_table [ ("Array", "get") ] f
                              || is_stdlib_fn [ "!" ] f -> (
      match args with
      | (_, Some first) :: _ -> head_ident first
      | _ -> None)
  | _ -> None

let describe_write = function
  | `Ref -> "assignment to captured ref"
  | `Field -> "mutation of a field of captured state"
  | `Array -> "write into captured array"
  | `Container -> "mutating call on captured container"

(* Analyze one closure that runs as a Parallel chunk: writes to free
   mutable state and raises that can cross the chunk boundary. *)
let analyze_chunk_closure ctx closure =
  ctx.closures <- ctx.closures + 1;
  let bound = bound_idents closure in
  let free id = not (Hashtbl.mem bound (Ident.unique_name id)) in
  let check_write kind target loc =
    match head_ident target with
    | Some (root, id) when free id && not (is_atomic_type root.exp_type) ->
        flag ctx loc rule_domain_capture
          (Printf.sprintf
             "%s '%s' inside a Parallel chunk closure: unsynchronized \
              mutable state shared across worker domains (use Atomic.t, \
              preallocate disjoint slices, or merge per-domain results \
              after the join)"
             (describe_write kind) (Ident.name id))
    | _ -> ()
  in
  let rec go ~try_depth e =
    with_allows ctx e.exp_attributes @@ fun () ->
    (match e.exp_desc with
    | Texp_setfield (obj, _, _, _) -> check_write `Field obj e.exp_loc
    | Texp_apply (f, args) -> (
        let positional =
          List.filter_map
            (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
            args
        in
        match (fn_last2 f, positional) with
        | Some (None, ":="), lhs :: _ -> check_write `Ref lhs e.exp_loc
        | Some (None, ("incr" | "decr")), r :: _ -> check_write `Ref r e.exp_loc
        | Some (Some m, v), first :: _ when List.mem (m, v) array_set_fns ->
            check_write `Array first e.exp_loc
        | Some (Some m, v), first :: _ when List.mem (m, v) container_mut_fns
          ->
            check_write `Container first e.exp_loc
        | Some (None, v), _ when List.mem v raise_like && try_depth = 0 ->
            flag ctx e.exp_loc rule_exn_escape
              (Printf.sprintf
                 "'%s' can cross the Parallel chunk boundary: no enclosing \
                  try inside the closure (handle it locally or return an \
                  error value)"
                 v)
        | _ -> ())
    | Texp_assert _ when try_depth = 0 ->
        flag ctx e.exp_loc rule_exn_escape
          "assert failure would cross the Parallel chunk boundary: no \
           enclosing try inside the closure"
    | _ -> ());
    match e.exp_desc with
    | Texp_try (body, cases) ->
        go ~try_depth:(try_depth + 1) body;
        List.iter
          (fun c ->
            Option.iter (go ~try_depth) c.c_guard;
            go ~try_depth c.c_rhs)
          cases
    | _ -> iter_children (go ~try_depth) e
  in
  go ~try_depth:0 closure

(* Find Parallel fan-out applications and analyze their function
   arguments, resolving let-bound closures by identifier. *)
let scan_parallel ctx fns e0 =
  let resolve a =
    match a.exp_desc with
    | Texp_function _ -> Some a
    | Texp_ident (Path.Pident id, _, _) -> (
        match Hashtbl.find_opt fns (Ident.unique_name id) with
        | Some body -> Some body
        | None -> None)
    | _ -> None
  in
  let rec go e =
    with_allows ctx e.exp_attributes @@ fun () ->
    (match e.exp_desc with
    | Texp_apply (f, args) when is_parallel_entry f ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some a when is_arrow_type a.exp_type -> (
                match resolve a with
                | Some closure -> analyze_chunk_closure ctx closure
                | None -> ())
            | _ -> ())
          args
    | _ -> ());
    iter_children go e
  in
  go e0

(* Collect every let-bound function body of the structure, keyed by
   the binder's unique name, so [Parallel.init n edges_of] resolves. *)
let collect_fn_bindings str =
  let tbl = Hashtbl.create 32 in
  let record vb =
    (* Any arrow-typed binding counts: [let value_of = match engine
       with ... -> fun i -> ...] still carries the chunk closures in
       its branches, and the write/raise scan is purely syntactic. *)
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) when is_arrow_type vb.vb_expr.exp_type ->
        Hashtbl.replace tbl (Ident.unique_name id) vb.vb_expr
    | _ -> ()
  in
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      value_binding =
        (fun it vb ->
          record vb;
          default_iterator.value_binding it vb);
    }
  in
  it.structure it str;
  tbl

(* Pass 2: unit / log-domain abstract interpretation ------------------ *)

type dom = Power | Distance | DistPow | Gain | LogDom | Dimless | Unknown

let dom_name = function
  | Power -> "power"
  | Distance -> "distance"
  | DistPow -> "distance^alpha"
  | Gain -> "gain"
  | LogDom -> "log-domain"
  | Dimless -> "dimensionless"
  | Unknown -> "unknown"

let dom_equal (a : dom) (b : dom) = a = b

let is_linear_quantity = function
  | Power | Distance | DistPow | Gain -> true
  | LogDom | Dimless | Unknown -> false

(* Incompatible under + / - / comparison: log vs linear, or two
   distinct linear quantities.  Dimensionless mixes with anything
   (thresholds, accumulator seeds, log-domain shifts). *)
let mixes a b =
  match (a, b) with
  | LogDom, x | x, LogDom -> is_linear_quantity x
  | _ ->
      is_linear_quantity a && is_linear_quantity b && not (dom_equal a b)

let join a b = if dom_equal a b then a else Unknown

let distance_sources =
  [
    ("Linkset", "length"); ("Linkset", "dist");
    ("Linkset", "sender_to_receiver"); ("Linkset", "min_length");
    ("Linkset", "max_length"); ("Link", "length"); ("Link", "min_distance");
    ("Link", "sender_to_receiver"); ("Vec2", "dist"); ("Vec2", "norm");
    ("Link_index", "class_min_length"); ("Link_index", "class_max_length");
  ]

let power_sources = [ ("Power", "value"); ("Power", "oblivious_constant") ]
let power_array_sources = [ ("Power", "vector") ]

let dimless_sources =
  [
    ("Affectance", "additive"); ("Affectance", "additive_on_set");
    ("Affectance", "additive_from_set"); ("Affectance", "relative");
    ("Affectance", "relative_total"); ("Affectance", "mst_longer_pressure");
    ("Feasibility", "sinr"); ("Feasibility", "margin");
    ("Linkset", "diversity");
  ]

let logdom_sources =
  [ ("Logfloat", "log_value"); ("Growth", "log2"); ("Float", "log");
    ("Float", "log10"); ("Float", "log2") ]

let params_field_dom lbl_name =
  match lbl_name with
  | "noise" -> Some Power
  | "alpha" | "beta" | "epsilon" -> Some Dimless
  | _ -> None

let is_params_record ty =
  match type_last2 ty with
  | Some (Some "Params", "t") | Some (None, "t") -> true
  | _ -> false

let mix_message op a b =
  Printf.sprintf
    "%s mixes %s and %s operands: linear and log-domain (or distinct \
     physical) quantities never meet under %s — convert explicitly \
     (exp/log, Logfloat.to_float) or normalize the units first"
    op (dom_name a) (dom_name b) op

let rec infer ctx env e : dom =
  ctx.exprs <- ctx.exprs + 1;
  with_allows ctx e.exp_attributes @@ fun () ->
  let bind_pat pat d =
    match pat.pat_desc with
    | Tpat_var (id, _) -> Hashtbl.replace env (Ident.unique_name id) d
    | _ -> ()
  in
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float _) -> Dimless
  | Texp_constant _ -> Unknown
  | Texp_ident (Path.Pident id, _, _) -> (
      match Hashtbl.find_opt env (Ident.unique_name id) with
      | Some d -> d
      | None -> Unknown)
  | Texp_ident _ -> Unknown
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          with_allows ctx vb.vb_attributes @@ fun () ->
          bind_pat vb.vb_pat (infer ctx env vb.vb_expr))
        vbs;
      infer ctx env body
  | Texp_function { arg_label; param; cases; _ } ->
      let param_dom =
        match arg_label with
        | Asttypes.Labelled "power" | Asttypes.Optional "power" -> Some Power
        | _ -> if String.equal (Ident.name param) "power" then Some Power
               else None
      in
      Option.iter
        (fun d -> Hashtbl.replace env (Ident.unique_name param) d)
        param_dom;
      List.iter
        (fun c ->
          (match (c.c_lhs.pat_desc, param_dom) with
          | Tpat_var (id, _), Some d ->
              Hashtbl.replace env (Ident.unique_name id) d
          | Tpat_var (id, _), None when String.equal (Ident.name id) "power"
            ->
              Hashtbl.replace env (Ident.unique_name id) Power
          | _ -> ());
          Option.iter (fun g -> ignore (infer ctx env g)) c.c_guard;
          ignore (infer ctx env c.c_rhs))
        cases;
      Unknown
  | Texp_ifthenelse (c, a, b) -> (
      ignore (infer ctx env c);
      let da = infer ctx env a in
      match b with
      | Some b -> join da (infer ctx env b)
      | None -> Unknown)
  | Texp_sequence (a, b) ->
      ignore (infer ctx env a);
      infer ctx env b
  | Texp_match (s, cases, _) ->
      ignore (infer ctx env s);
      List.fold_left
        (fun acc c ->
          Option.iter (fun g -> ignore (infer ctx env g)) c.c_guard;
          join acc (infer ctx env c.c_rhs))
        Unknown cases
  | Texp_field (r, _, lbl) ->
      ignore (infer ctx env r);
      if is_params_record lbl.Types.lbl_res then
        Option.value ~default:Unknown (params_field_dom lbl.Types.lbl_name)
      else Unknown
  | Texp_array es ->
      List.fold_left
        (fun acc el ->
          let d = infer ctx env el in
          match acc with None -> Some d | Some a -> Some (join a d))
        None es
      |> Option.value ~default:Unknown
  | Texp_open (_, body) -> infer ctx env body
  | Texp_apply (f, args) -> infer_apply ctx env e f args
  | _ ->
      iter_children (fun c -> ignore (infer ctx env c)) e;
      Unknown

and infer_apply ctx env e f args =
  let positional =
    List.filter_map
      (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  (* Labelled ~power: arguments expect a linear-domain value. *)
  List.iter
    (fun (lbl, a) ->
      match (lbl, a) with
      | Asttypes.Labelled "power", Some a when is_float_type a.exp_type ->
          if dom_equal (infer ctx env a) LogDom then
            flag ctx a.exp_loc rule_unit_mix
              "log-domain float passed to a linear-domain ~power: argument \
               (convert with Logfloat.to_float / exp first)"
      | _ -> ())
    args;
  let infer_rest skip =
    List.iter
      (fun (_, a) ->
        match a with
        | Some a when not (List.memq a skip) -> ignore (infer ctx env a)
        | _ -> ())
      args
  in
  let binary k =
    match positional with
    | [ a; b ] ->
        let da = infer ctx env a and db = infer ctx env b in
        infer_rest [ a; b ];
        k a b da db
    | _ ->
        infer_rest [];
        Unknown
  in
  let flag_mix op a b da db =
    if mixes da db then
      flag ctx e.exp_loc rule_unit_mix (mix_message op da db);
    ignore a;
    ignore b
  in
  match fn_last2 f with
  | Some (None, (("+." | "-.") as op)) ->
      binary (fun a b da db ->
          flag_mix op a b da db;
          match (da, db) with
          | d, Dimless | Dimless, d -> d
          | da, db -> join da db)
  | Some (None, "*.") ->
      binary (fun _ _ da db ->
          match (da, db) with
          | d, Dimless | Dimless, d -> d
          | Power, Gain | Gain, Power -> Power
          | DistPow, Gain | Gain, DistPow -> Dimless
          | _ -> Unknown)
  | Some (None, "/.") ->
      binary (fun _ _ da db ->
          match (da, db) with
          | da, db when dom_equal da db && not (dom_equal da Unknown) ->
              Dimless
          | Power, DistPow -> Power
          | Dimless, DistPow -> Gain
          | d, Dimless -> d
          | LogDom, _ | _, LogDom -> Unknown
          | _ -> Unknown)
  | Some (None, "**") ->
      binary (fun _ _ da _ ->
          match da with
          | Distance -> DistPow
          | Dimless -> Dimless
          | _ -> Unknown)
  | Some (None, "~-.") -> (
      match positional with
      | [ a ] -> infer ctx env a
      | _ ->
          infer_rest [];
          Unknown)
  | Some (None, (("<" | "<=" | ">" | ">=" | "=" | "<>") as op))
    when List.length positional = 2
         && List.for_all (fun a -> is_float_type a.exp_type) positional ->
      binary (fun a b da db ->
          flag_mix (Printf.sprintf "comparison (%s)" op) a b da db;
          Unknown)
  | Some (Some "Float", (("compare" | "equal" | "min" | "max") as op)) ->
      binary (fun a b da db ->
          flag_mix ("Float." ^ op) a b da db;
          match op with "min" | "max" -> join da db | _ -> Unknown)
  | Some (Some "Logfloat", "of_float") ->
      (match positional with
      | [ a ] ->
          if dom_equal (infer ctx env a) LogDom then
            flag ctx e.exp_loc rule_unit_mix
              "log-domain float passed to Logfloat.of_float (double log): \
               use Logfloat.of_log for values that are already logarithms"
      | _ -> infer_rest []);
      Unknown
  | Some (Some "Logfloat", "of_log") ->
      (match positional with
      | [ a ] ->
          let da = infer ctx env a in
          if is_linear_quantity da then
            flag ctx e.exp_loc rule_unit_mix
              (Printf.sprintf
                 "linear-domain %s passed to Logfloat.of_log, which expects \
                  a logarithm: use Logfloat.of_float"
                 (dom_name da))
      | _ -> infer_rest []);
      Unknown
  | Some (None, ("log" | "log10" | "log1p")) ->
      infer_rest [];
      LogDom
  | Some (None, "exp") | Some (Some "Float", "exp") ->
      infer_rest [];
      Unknown
  | Some (None, "float_of_int") | Some (Some "Float", "of_int") ->
      infer_rest [];
      Dimless
  | Some (Some "Float", "abs") -> (
      match positional with
      | [ a ] -> infer ctx env a
      | _ ->
          infer_rest [];
          Unknown)
  | Some (Some ("Array" | "Linkset"), ("get" | "unsafe_get")) -> (
      match positional with
      | arr :: rest ->
          List.iter (fun a -> ignore (infer ctx env a)) rest;
          infer ctx env arr
      | [] -> Unknown)
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  distance_sources) ->
      infer_rest [];
      Distance
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  (power_sources @ power_array_sources)) ->
      infer_rest [];
      Power
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  dimless_sources) ->
      infer_rest [];
      Dimless
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  logdom_sources) ->
      infer_rest [];
      LogDom
  | _ ->
      ignore (infer ctx env f);
      infer_rest [];
      Unknown

(* Pass 3: float-safety dataflow -------------------------------------- *)

module SSet = Set.Make (String)

let float_const_nonzero s =
  match float_of_string_opt s with
  | Some v -> Float.is_finite v && not (Float.equal v 0.0)
  | None -> false

let rec always_raises e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match fn_last2 f with
      | Some (None, v) -> List.mem v raise_like
      | _ -> false)
  | Texp_sequence (_, b) -> always_raises b
  | Texp_let (_, _, b) -> always_raises b
  | Texp_ifthenelse (_, a, Some b) -> always_raises a && always_raises b
  | _ -> false

(* A (possibly partial) application of a configured positivity-
   preserving map — [Params.alpha_pow p] and friends. *)
let positive_map_partial ctx e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match fn_last2 f with
      | Some (Some m, v) -> List.mem (m, v) ctx.cfg.Config.positive_maps
      | _ -> false)
  | _ -> false

(* [nonzero ctx guards pos maps e]: the heuristic "provably nonzero on
   this path" judgment described in the module header.  [maps] holds
   local idents bound to positivity-preserving closures (see
   [positive_map_partial]): applying one to a nonzero operand is
   nonzero. *)
let rec nonzero ctx guards pos maps e =
  let self = nonzero ctx guards pos maps in
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float s) -> float_const_nonzero s
  | Texp_ident (Path.Pident id, _, _) ->
      let n = Ident.unique_name id in
      SSet.mem n guards || SSet.mem n pos
  | Texp_field (_, _, lbl)
    when is_params_record lbl.Types.lbl_res
         && List.mem lbl.Types.lbl_name [ "alpha"; "beta"; "epsilon" ] ->
      (* Params.make validates alpha > 2, beta > 0, epsilon > 0. *)
      true
  | Texp_open (_, b) -> self b
  | Texp_apply (f, args) -> (
      let positional =
        List.filter_map
          (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
          args
      in
      let last_positional () =
        match List.rev positional with a :: _ -> self a | [] -> false
      in
      match (fn_last2 f, positional) with
      | Some (Some m, v), _ when List.mem (m, v) ctx.cfg.Config.positive_sources
        ->
          true
      | Some (None, v), _
        when List.mem (ctx.self_module, v) ctx.cfg.Config.positive_sources ->
          true
      | Some (Some m, v), _ when List.mem (m, v) ctx.cfg.Config.positive_maps
        ->
          (* Fully applied positivity-preserving map: positive iff its
             (last) operand is. *)
          last_positional ()
      | _, _
        when (match f.exp_desc with
             | Texp_ident (Path.Pident id, _, _) ->
                 SSet.mem (Ident.unique_name id) maps
             | _ -> false) ->
          last_positional ()
      | Some (None, "exp"), _ | Some (Some "Float", "exp"), _ -> true
      | Some (None, ("log" | "log10")), [ arg ] -> (
          (* log of a constant other than 1 is a nonzero constant. *)
          match arg.exp_desc with
          | Texp_constant (Asttypes.Const_float s) -> (
              match float_of_string_opt s with
              | Some v -> v > 0.0 && not (Float.equal v 1.0)
              | None -> false)
          | _ -> false)
      | Some (None, "**"), [ base; _ ] -> self base
      | Some (None, ("*." | "/." | "+.")), [ a; b ] -> self a && self b
      | Some (None, "~-."), [ a ] -> self a
      | Some (Some "Float", "abs"), [ a ] -> self a
      | Some (Some "Float", "min"), [ a; b ] -> self a && self b
      | Some (Some "Float", "max"), [ a; b ] ->
          self a || self b
          || List.exists
               (fun x ->
                 match x.exp_desc with
                 | Texp_constant (Asttypes.Const_float s) ->
                     float_const_nonzero s
                 | _ -> false)
               [ a; b ]
      | Some (Some "Array", ("get" | "unsafe_get")), arr :: _ -> self arr
      | _ -> false)
  | _ ->
      (* Fallback: any identifier inside the operand is covered by an
         enclosing guard. *)
      List.exists (fun n -> SSet.mem n guards) (idents_in e)

let guard_idents e = SSet.of_list (idents_in e)

let sort_fns =
  [
    ("List", "sort"); ("List", "stable_sort"); ("List", "fast_sort");
    ("List", "sort_uniq"); ("Array", "sort"); ("Array", "stable_sort");
    ("Array", "fast_sort");
  ]

let float_walk ctx e0 =
  let check_nonzero guards pos maps ~in_sort what den loc =
    if not (nonzero ctx guards pos maps den) then
      if in_sort then
        flag ctx loc rule_nan_compare
          (Printf.sprintf
             "%s with an operand not provably nonzero inside a sort \
              comparator: a NaN key silently corrupts the order — guard \
              the operand or precompute a safe key"
             what)
      else if ctx.hot then
        flag ctx loc rule_float_unguarded
          (Printf.sprintf
             "unguarded %s on a hot path: the operand is not provably \
              nonzero (guard with an explicit test, or derive it from a \
              positive source such as Linkset.length)"
             what)
  in
  let rec go guards pos maps ~in_sort e =
    with_allows ctx e.exp_attributes @@ fun () ->
    let self = go guards pos maps ~in_sort in
    match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        List.iter (fun vb -> self vb.vb_expr) vbs;
        let pos, maps =
          List.fold_left
            (fun (pos, maps) vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) when nonzero ctx guards pos maps vb.vb_expr ->
                  (SSet.add (Ident.unique_name id) pos, maps)
              | Tpat_var (id, _) when positive_map_partial ctx vb.vb_expr ->
                  (pos, SSet.add (Ident.unique_name id) maps)
              | _ -> (pos, maps))
            (pos, maps) vbs
        in
        go guards pos maps ~in_sort body
    | Texp_function { arg_label; param; cases; _ } ->
        let pos =
          let powerish =
            match arg_label with
            | Asttypes.Labelled "power" | Asttypes.Optional "power" -> true
            | _ -> String.equal (Ident.name param) "power"
          in
          if powerish then SSet.add (Ident.unique_name param) pos else pos
        in
        List.iter
          (fun c ->
            let pos =
              match c.c_lhs.pat_desc with
              | Tpat_var (id, _) when String.equal (Ident.name id) "power" ->
                  SSet.add (Ident.unique_name id) pos
              | _ -> pos
            in
            match c.c_guard with
            | Some g ->
                go guards pos maps ~in_sort g;
                go (SSet.union guards (guard_idents g)) pos maps ~in_sort
                  c.c_rhs
            | None -> go guards pos maps ~in_sort c.c_rhs)
          cases
    | Texp_ifthenelse (c, a, b) ->
        self c;
        let guards = SSet.union guards (guard_idents c) in
        go guards pos maps ~in_sort a;
        Option.iter (go guards pos maps ~in_sort) b
    | Texp_match (s, cases, _) ->
        self s;
        List.iter
          (fun c ->
            match c.c_guard with
            | Some g ->
                self g;
                go (SSet.union guards (guard_idents g)) pos maps ~in_sort
                  c.c_rhs
            | None -> self c.c_rhs)
          cases
    | Texp_sequence (a, b) ->
        self a;
        let guards =
          match a.exp_desc with
          | Texp_ifthenelse (c, th, None) when always_raises th ->
              SSet.union guards (guard_idents c)
          | Texp_ifthenelse (c, th, Some el)
            when always_raises th || always_raises el ->
              SSet.union guards (guard_idents c)
          | Texp_assert (c, _) -> SSet.union guards (guard_idents c)
          | _ -> guards
        in
        go guards pos maps ~in_sort b
    | Texp_apply (f, args) -> (
        let positional =
          List.filter_map
            (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
            args
        in
        (match (fn_last2 f, positional) with
        | Some (None, "/."), [ _; den ] ->
            check_nonzero guards pos maps ~in_sort "division (/.)" den
              e.exp_loc
        | Some (None, (("log" | "log10" | "sqrt") as fn)), [ arg ]
        | Some (Some "Float", (("log" | "log10" | "sqrt") as fn)), [ arg ] ->
            check_nonzero guards pos maps ~in_sort (fn ^ " application") arg
              e.exp_loc
        | _ -> ());
        match (fn_last2 f, positional) with
        | Some (Some m, v), cmp :: rest when List.mem (m, v) sort_fns ->
            go guards pos maps ~in_sort:true cmp;
            List.iter self rest
        | Some (None, ("&&" | "||")), [ a; b ] ->
            (* Short-circuit: the right conjunct only evaluates under
               the left one's test. *)
            self a;
            go (SSet.union guards (guard_idents a)) pos maps ~in_sort b
        | _ ->
            self f;
            List.iter (fun (_, a) -> Option.iter self a) args)
    | Texp_try (body, cases) ->
        self body;
        List.iter
          (fun c ->
            Option.iter self c.c_guard;
            self c.c_rhs)
          cases
    | _ -> iter_children self e
  in
  go SSet.empty SSet.empty SSet.empty ~in_sort:false e0

(* Per-structure driver ----------------------------------------------- *)

let file_allows_of_structure str =
  List.concat_map
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a when String.equal a.attr_name.txt "wa.check.allow"
        ->
          allows_of_payload a.attr_payload
      | _ -> [])
    str.str_items

let analyze_structure ctx str =
  let fns = collect_fn_bindings str in
  let env = Hashtbl.create 64 in
  let rec do_items items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                with_allows ctx vb.vb_attributes @@ fun () ->
                if not ctx.capture_ok then scan_parallel ctx fns vb.vb_expr;
                float_walk ctx vb.vb_expr;
                let d = infer ctx env vb.vb_expr in
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) ->
                    Hashtbl.replace env (Ident.unique_name id) d
                | _ -> ())
              vbs
        | Tstr_eval (e, attrs) ->
            with_allows ctx attrs @@ fun () ->
            if not ctx.capture_ok then scan_parallel ctx fns e;
            float_walk ctx e;
            ignore (infer ctx env e)
        | Tstr_module mb -> do_module_expr mb.mb_expr
        | Tstr_recmodule mbs ->
            List.iter (fun mb -> do_module_expr mb.mb_expr) mbs
        | Tstr_include incl -> do_module_expr incl.incl_mod
        | _ -> ())
      items
  and do_module_expr me =
    match me.mod_desc with
    | Tmod_structure s -> do_items s.str_items
    | Tmod_constraint (me, _, _, _) -> do_module_expr me
    | Tmod_functor (_, me) -> do_module_expr me
    | _ -> ()
  in
  do_items str.str_items

(* Cmt driver --------------------------------------------------------- *)

type file_report = {
  source : string option;
  analyzed : bool;
  file_violations : violation list;
  file_closures : int;
  file_expressions : int;
}

let skipped =
  {
    source = None;
    analyzed = false;
    file_violations = [];
    file_closures = 0;
    file_expressions = 0;
  }

let is_generated src =
  Filename.check_suffix src "-gen" || Filename.check_suffix src ".ml-gen"

let analyze_cmt ?(config = Config.default) path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      {
        skipped with
        source = Some (normalize_path path);
        file_violations =
          [
            {
              file = normalize_path path;
              line = 1;
              col = 0;
              rule = rule_cmt_error;
              message =
                Printf.sprintf "cannot read cmt: %s" (Printexc.to_string exn);
            };
          ];
      }
  | infos -> (
      match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile)
      with
      | Cmt_format.Implementation str, Some src when not (is_generated src)
        ->
          let src = normalize_path src in
          let ctx =
            {
              cfg = config;
              src;
              self_module =
                String.capitalize_ascii
                  (Filename.remove_extension (Filename.basename src));
              hot = path_matches ~prefixes:config.Config.hot_paths src;
              capture_ok =
                path_matches ~prefixes:config.Config.capture_allowed src;
              file_allows = file_allows_of_structure str;
              allow_stack = [];
              found = [];
              closures = 0;
              exprs = 0;
            }
          in
          analyze_structure ctx str;
          {
            source = Some src;
            analyzed = true;
            file_violations = List.sort compare_violation ctx.found;
            file_closures = ctx.closures;
            file_expressions = ctx.exprs;
          }
      | _ -> skipped)

(* Directory driver: collect .cmt files, descending into dune's hidden
   .objs directories (unlike source scanners, dotted dirs are the
   point here). *)
let rec collect_cmt acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = ".git" || entry = "node_modules" then acc
           else collect_cmt acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let analyze_paths ?(config = Config.default) paths =
  let files =
    List.fold_left collect_cmt [] paths |> List.sort_uniq String.compare
  in
  let reports = List.map (analyze_cmt ~config) files in
  let analyzed = List.filter (fun r -> r.analyzed) reports in
  {
    files_scanned = List.length analyzed;
    closures_analyzed =
      List.fold_left (fun a r -> a + r.file_closures) 0 analyzed;
    expressions_analyzed =
      List.fold_left (fun a r -> a + r.file_expressions) 0 analyzed;
    violations =
      List.concat_map (fun r -> r.file_violations) reports
      |> List.sort_uniq compare_violation;
  }
