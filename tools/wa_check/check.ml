(* Typed-AST semantic analysis for the wireless_agg tree.

   Where wa_lint is deliberately syntactic (Parsetree, no types), this
   analyzer loads the .cmt files dune already produces and walks the
   Typedtree, so every rule below sees resolved paths and inferred
   types.  Since PR 8 the analysis is whole-program: a first phase
   extracts serializable per-function facts from every unit
   ([Summary.unit_facts]), a second phase builds the call graph and
   runs a bottom-up fixpoint over its SCCs ([Summary.solve]), and a
   third phase re-walks each unit with the summary table in hand.  Ten
   passes:

   - [domain-capture]: for every closure reaching
     [Wa_util.Parallel.{iter,init,map_array,fold_float_max}], compute
     the capture set from the Typedtree and reject writes to captured
     refs ([:=], [incr], [decr]), mutable record fields ([<-]),
     arrays ([Array.set], [a.(i) <- v]) and mutating container calls
     ([Hashtbl.replace], [Buffer.add_*], ...) on free variables of
     the closure — unsynchronized mutable state shared across worker
     domains.  With summaries the check is transitive: a call whose
     callee (through any chain) writes module-level state, or writes
     through a parameter bound to free non-[Atomic] state, is rejected
     too.  [Atomic.t] state is exempt, as are whitelisted sites
     ([lib/obs/], [lib/util/parallel.ml] by default, where the
     disjoint-write and per-domain-buffer invariants are documented).
   - [unit-mix]: a small abstract interpretation over the lattice
     {power, distance, distance^alpha, gain, log-domain,
     dimensionless, unknown} seeded from declared sources
     ([Power.value], [Linkset.length], [Logfloat.log_value], [log],
     [Params] fields, ...) and, with summaries, from the recorded
     result domain of any resolvable callee.
   - [float-unguarded]: on configured hot paths, a division / [log] /
     [sqrt] whose denominator/argument is not provably nonzero.
     Provers: positive-by-construction sources, nonzero literals,
     products/powers of those, enclosing guards, record-field bounds
     proven over every construction site in the program
     ([Params.make]'s [alpha > 2] and friends), callees summarized as
     returning a positive float (through mutual recursion), witness
     refs ([let ok = ref true] refuted before use), and positive-array
     invariants ([Array.make _ c] with every write floored).  A
     denominator that only a caller can prove becomes a recorded
     precondition, discharged at every hot call site instead of
     flagged at the definition.
   - [nan-compare]: the same unguarded NaN-producing shapes appearing
     inside a comparator closure passed to [List.sort] /
     [Array.sort] / [sort_uniq] — NaN keys silently corrupt order.
   - [exn-escape]: a raise that can cross a [Parallel] chunk boundary
     and kill the fan-out on a worker domain: either a syntactic raise
     ([raise], [failwith], [invalid_arg], [assert]) with no enclosing
     [try] inside the closure, or — with summaries — a call whose
     transitive may-raise set is not covered by the enclosing
     handlers.  [Fun.protect] bodies count as handled (they delegate
     cleanup deliberately).
   - [hot-alloc]: functions annotated [@wa.hot] are certified to
     perform no heap allocation transitively: tuples, records, array
     literals, non-constant constructors, closures that capture,
     partial applications and calls to unsummarized functions are all
     diagnosed with the allocating call chain.  Cold paths (branches
     that always raise, assertion payloads) and non-escaping local
     refs are excluded; float boxing at returns and calls through
     function-typed parameters are out of the model (documented in
     DESIGN.md §14).
   - [lockset]: fields and top-level refs annotated
     [[@wa.guarded_by "Cache.t.mutex"]] must only be touched with the
     named mutex held.  Extraction threads the held-lock set through
     [Mutex.lock]/[unlock] sequences, [Mutex.protect] thunks and
     in-unit lock-wrapper functions; an access without the guard
     becomes a {e requirement} that call sites discharge by holding
     the lock ([Summary.solve] propagates undischarged requirements up
     the call graph), so helpers that run under their caller's lock
     are certified interprocedurally.  Requirements left on a function
     no summarized caller discharges are reported with the access
     chain.  [[@wa.benign_race]] marks an intentional unguarded field.
   - [lock-order]: the global lock-acquisition-order graph — direct
     nested acquisitions plus calls made with locks held into callees
     that transitively acquire more — must be acyclic; every edge of a
     cycle is reported with both conflicting chains.
   - [event-loop-block]: functions annotated [[@wa.event_loop]] (the
     per-iteration handlers of the select loop) are certified to reach
     no blocking primitive — [Condition.wait], [Thread.delay],
     [Domain.join], blocking [Unix] syscalls (the [select] itself is
     exempt), [Pool.drain] (blocks via its [Condition.wait]), or
     functions marked [[@wa.compute]] — through any non-deferred call
     chain.  Closures handed to [Pool.submit] / [Domain.spawn] /
     [Parallel] entries run on other domains and are exempt.
   - [check-then-act]: an [Atomic.get] in the scrutinee of a
     conditional followed by [Atomic.set] on the same atomic in a
     dependent branch is a lost-update window; use
     [Atomic.compare_and_set].

   Suppress with [[@wa.check.allow "rule ..."]] on the offending
   expression (or any enclosing one), or a floating
   [[@@@wa.check.allow "rule ..."]] for the whole file.  An on-disk
   cache keyed by .cmt digest ([analyze_program ~cache]) makes warm
   whole-program runs reconstruct byte-identical reports without
   reading a single Typedtree. *)

module Json = Wa_util.Json

(* Rules ------------------------------------------------------------- *)

let rule_domain_capture = "domain-capture"
let rule_unit_mix = "unit-mix"
let rule_float_unguarded = "float-unguarded"
let rule_nan_compare = "nan-compare"
let rule_exn_escape = "exn-escape"
let rule_hot_alloc = "hot-alloc"
let rule_lockset = "lockset"
let rule_lock_order = "lock-order"
let rule_event_loop = "event-loop-block"
let rule_check_then_act = "check-then-act"
let rule_cmt_error = "cmt-error"

let all_rules =
  [
    rule_domain_capture;
    rule_unit_mix;
    rule_float_unguarded;
    rule_nan_compare;
    rule_exn_escape;
    rule_hot_alloc;
    rule_lockset;
    rule_lock_order;
    rule_event_loop;
    rule_check_then_act;
    rule_cmt_error;
  ]

(* Configuration ------------------------------------------------------ *)

module Config = struct
  type t = {
    hot_paths : string list;
    capture_allowed : string list;
    positive_sources : (string * string) list;
    positive_maps : (string * string) list;
  }

  let default =
    {
      hot_paths = [ "lib/sinr/"; "lib/core/conflict.ml" ];
      capture_allowed = [ "lib/obs/"; "lib/util/parallel.ml" ];
      positive_sources =
        [
          (* Link.make rejects zero-length links, so every length
             derived from a linkset is strictly positive. *)
          ("Linkset", "length");
          ("Linkset", "min_length");
          ("Linkset", "max_length");
          ("Linkset", "diversity");
          (* The flat views expose the same validated lengths (and
             their alpha-powers) as arrays. *)
          ("Linkset", "lengths");
          ("Linkset", "lengths_pow");
          ("Link", "length");
          ("Link_index", "class_min_length");
          ("Link_index", "class_max_length");
          (* Power.value / Power.vector validate positivity (custom
             vectors via check_custom, oblivious schemes by
             construction). *)
          ("Power", "value");
          ("Power", "vector");
          ("Power", "oblivious_constant");
        ];
      positive_maps =
        [
          (* x^alpha is positive for positive x whatever the exponent;
             partial applications bound to a local name are tracked so
             [let pow = Params.alpha_pow p in ... pow d] inherits the
             guarantee from a guarded [d]. *)
          ("Params", "alpha_pow");
          ("Params", "pow_apply");
        ];
    }
end

(* Violations and reports (same schema as wa_lint, plus coverage) ----- *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let equal_violation a b =
  String.equal a.file b.file && a.line = b.line && a.col = b.col
  && String.equal a.rule b.rule
  && String.equal a.message b.message

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp_violation fmt v =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

let violation_to_json v =
  Json.Obj
    [
      ("file", Json.String v.file);
      ("line", Json.Int v.line);
      ("col", Json.Int v.col);
      ("rule", Json.String v.rule);
      ("message", Json.String v.message);
    ]

let violation_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match (str "file", int "line", int "col", str "rule", str "message") with
  | Some file, Some line, Some col, Some rule, Some message ->
      Ok { file; line; col; rule; message }
  | _ -> Error "violation_of_json: missing or ill-typed field"

type report = {
  files_scanned : int;
  closures_analyzed : int;
  expressions_analyzed : int;
  guarded_accesses : int;  (* guarded-field accesses certified lock-held *)
  event_loop_roots : int;  (* [@wa.event_loop] roots certified non-blocking *)
  violations : violation list;
}

let report_to_json r =
  Json.Obj
    [
      ("tool", Json.String "wa_check");
      ("version", Json.Int 3);
      ("files_scanned", Json.Int r.files_scanned);
      ("closures_analyzed", Json.Int r.closures_analyzed);
      ("expressions_analyzed", Json.Int r.expressions_analyzed);
      ("guarded_accesses", Json.Int r.guarded_accesses);
      ("event_loop_roots", Json.Int r.event_loop_roots);
      ("violation_count", Json.Int (List.length r.violations));
      ("violations", Json.List (List.map violation_to_json r.violations));
    ]

let report_of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match
    ( int "files_scanned",
      int "closures_analyzed",
      int "expressions_analyzed",
      int "guarded_accesses",
      int "event_loop_roots",
      Json.member "violations" j )
  with
  | Some files_scanned, Some closures_analyzed, Some expressions_analyzed,
    Some guarded_accesses, Some event_loop_roots, Some (Json.List vs) ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match violation_of_json v with
            | Ok v -> collect (v :: acc) rest
            | Error _ as e -> e)
      in
      Result.map
        (fun violations ->
          {
            files_scanned;
            closures_analyzed;
            expressions_analyzed;
            guarded_accesses;
            event_loop_roots;
            violations;
          })
        (collect [] vs)
  | _ -> Error "report_of_json: missing files_scanned/stats/violations"

(* Per-file reports: the unit of caching. ----------------------------- *)

type file_report = {
  source : string option;
  analyzed : bool;
  file_violations : violation list;
  file_closures : int;
  file_expressions : int;
  file_guarded : int;  (* certified guarded-field accesses in this unit *)
  file_roots : int;  (* certified [@wa.event_loop] roots in this unit *)
}

let skipped =
  {
    source = None;
    analyzed = false;
    file_violations = [];
    file_closures = 0;
    file_expressions = 0;
    file_guarded = 0;
    file_roots = 0;
  }

let file_report_to_json r =
  Json.Obj
    [
      ( "source",
        match r.source with None -> Json.Null | Some s -> Json.String s );
      ("analyzed", Json.Bool r.analyzed);
      ("closures", Json.Int r.file_closures);
      ("expressions", Json.Int r.file_expressions);
      ("guarded", Json.Int r.file_guarded);
      ("roots", Json.Int r.file_roots);
      ("violations", Json.List (List.map violation_to_json r.file_violations));
    ]

let file_report_of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let source =
    match Json.member "source" j with Some (Json.String s) -> Some s | _ -> None
  in
  let analyzed =
    match Json.member "analyzed" j with Some (Json.Bool b) -> Some b | _ -> None
  in
  match
    ( analyzed,
      int "closures",
      int "expressions",
      int "guarded",
      int "roots",
      Json.member "violations" j )
  with
  | Some analyzed, Some file_closures, Some file_expressions,
    Some file_guarded, Some file_roots, Some (Json.List vs) ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match violation_of_json v with
            | Ok v -> collect (v :: acc) rest
            | Error _ as e -> e)
      in
      Result.map
        (fun file_violations ->
          {
            source;
            analyzed;
            file_violations;
            file_closures;
            file_expressions;
            file_guarded;
            file_roots;
          })
        (collect [] vs)
  | _ -> Error "file_report_of_json: missing or ill-typed field"

(* Path helpers ------------------------------------------------------- *)

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let path_matches ~prefixes path =
  let path = normalize_path path in
  List.exists
    (fun prefix ->
      let prefix = normalize_path prefix in
      String.length path >= String.length prefix
      && String.sub path 0 (String.length prefix) = prefix)
    prefixes

(* Resolved-path helpers ---------------------------------------------- *)

(* Split a compilation-unit name mangled by dune's module wrapping:
   "Wa_util__Parallel" -> ["Wa_util"; "Parallel"]. *)
let split_wrapped s =
  let n = String.length s in
  let rec go acc start i =
    if i + 1 >= n then List.rev (String.sub s start (n - start) :: acc)
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (String.sub s start (i - start) :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  go [] 0 0 |> List.filter (fun x -> x <> "")

let rec path_parts = function
  | Path.Pident id -> split_wrapped (Ident.name id)
  | Path.Pdot (p, s) -> path_parts p @ [ s ]
  | Path.Papply (p, _) -> path_parts p
  | Path.Pextra_ty (p, _) -> path_parts p

(* (enclosing module, name): ["Wa_sinr"; "Linkset"; "length"] gives
   (Some "Linkset", "length"); a bare "log" gives (None, "log") with
   "Stdlib" qualifiers stripped. *)
let last2 parts =
  match List.rev parts with
  | [] -> (None, "")
  | [ v ] -> (None, v)
  | v :: "Stdlib" :: _ -> (None, v)
  | v :: m :: _ -> (Some m, v)

let short_fq fq =
  match List.rev (String.split_on_char '.' fq) with
  | v :: m :: _ -> m ^ "." ^ v
  | _ -> fq

open Typedtree

let fn_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let fn_last2 e = Option.map (fun p -> last2 (path_parts p)) (fn_path e)

let matches_table table e =
  match fn_last2 e with
  | Some (Some m, v) -> List.mem (m, v) table
  | _ -> false

let is_stdlib_fn names e =
  match fn_last2 e with
  | Some (None, v) -> List.mem v names
  | Some (Some "Float", v) -> List.mem v names
  | _ -> false

(* Resolver: local identifiers and module aliases of one unit -------- *)

type resolver = {
  unit_parts : string list;  (* ["Wa_sinr"; "Linkset"] *)
  r_values : (string, string) Hashtbl.t;
      (* Ident.unique_name of a toplevel binder -> dotted fq name *)
  r_aliases : (string, string list) Hashtbl.t;
      (* local module alias name -> aliased module parts *)
}

let build_resolver unit_parts str =
  let r =
    {
      unit_parts;
      r_values = Hashtbl.create 64;
      r_aliases = Hashtbl.create 8;
    }
  in
  let rec do_items prefix items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                List.iter
                  (fun id ->
                    Hashtbl.replace r.r_values (Ident.unique_name id)
                      (String.concat "."
                         (unit_parts @ prefix @ [ Ident.name id ])))
                  (pat_bound_idents vb.vb_pat))
              vbs
        | Tstr_module mb -> do_module prefix mb
        | Tstr_recmodule mbs -> List.iter (do_module prefix) mbs
        | Tstr_include incl -> do_module_expr prefix incl.incl_mod
        | _ -> ())
      items
  and do_module prefix mb =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
        let name = Ident.name id in
        match mb.mb_expr.mod_desc with
        | Tmod_ident (p, _) -> Hashtbl.replace r.r_aliases name (path_parts p)
        | _ -> do_module_expr (prefix @ [ name ]) mb.mb_expr)
  and do_module_expr prefix me =
    match me.mod_desc with
    | Tmod_structure s -> do_items prefix s.str_items
    | Tmod_constraint (me, _, _, _) -> do_module_expr prefix me
    | Tmod_functor (_, me) -> do_module_expr prefix me
    | _ -> ()
  in
  do_items [] str.str_items;
  r

let resolve_parts r parts =
  let parts =
    match parts with "Stdlib" :: (_ :: _ as rest) -> rest | _ -> parts
  in
  match parts with
  | head :: rest -> (
      match Hashtbl.find_opt r.r_aliases head with
      | Some alias -> alias @ rest
      | None -> parts)
  | [] -> []

(* Resolve a callee expression to the dotted name [Summary.lookup]
   understands: a local Pident through [r_values], anything dotted
   through its path (aliases rewritten).  [None] for parameters, local
   closures and unresolvable shapes. *)
let resolve_fn r e =
  match fn_path e with
  | Some (Path.Pident id) -> Hashtbl.find_opt r.r_values (Ident.unique_name id)
  | Some p -> (
      match resolve_parts r (path_parts p) with
      | _ :: _ :: _ as parts -> Some (String.concat "." parts)
      | _ -> None)
  | None -> None

(* Type-head inspection ----------------------------------------------- *)

let type_last2 ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (last2 (path_parts p))
  | _ -> None

let is_atomic_type ty =
  match type_last2 ty with Some (Some "Atomic", "t") -> true | _ -> false

let is_arrow_type ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let is_float_type ty =
  match type_last2 ty with
  | Some (None, "float") | Some (Some "Float", "t") -> true
  | _ -> false

(* The fully qualified name of a (record) type: a bare in-unit ["t"]
   is prefixed with the unit itself. *)
let type_fq r ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match resolve_parts r (path_parts p) with
      | [ single ] -> Some (String.concat "." (r.unit_parts @ [ single ]))
      | [] -> None
      | parts -> Some (String.concat "." parts))
  | _ -> None

(* Suppressions ------------------------------------------------------- *)

let allows_of_payload = function
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( {
                  pexp_desc =
                    Pexp_constant (Parsetree.Pconst_string (s, _, _));
                  _;
                },
                _ );
          _;
        };
      ] ->
      String.split_on_char ' ' s |> List.filter (fun x -> x <> "")
  | _ -> []

let allows_of_attrs attrs =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt "wa.check.allow" then
        allows_of_payload a.attr_payload
      else [])
    attrs

let has_attr name attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let attr_string name attrs =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt name then
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc =
                          Pexp_constant (Parsetree.Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            Some s
        | _ -> None
      else None)
    attrs

let is_wa_hot attrs = has_attr "wa.hot" attrs

(* Guard tables: [@wa.guarded_by "Lock.name"] annotations ------------- *)

(* Keys are short "Module.type.field" strings for record fields
   ("Cache.t.tick", with the module being the nearest enclosing
   submodule, or the unit itself) and short "Module.name" strings for
   top-level refs ("Grid_index.budget_warned").  Lock names follow the
   same scheme ("Cache.t.mutex", "Metrics.registry_mutex"). *)
type guards = {
  g_decls : (string, string) Hashtbl.t;
      (* unique name of an in-unit type ident -> its display key
         ("Pool.t"): a bare [t] used inside [module Pool] carries no
         module path, so uses are resolved through the declaration *)
  g_locks : (string, string) Hashtbl.t;  (* access key -> guarding lock *)
  g_benign : (string, unit) Hashtbl.t;  (* intentional unguarded state *)
}

let collect_guards unit_parts str =
  let g =
    {
      g_decls = Hashtbl.create 8;
      g_locks = Hashtbl.create 8;
      g_benign = Hashtbl.create 4;
    }
  in
  let unit_last =
    match List.rev unit_parts with m :: _ -> m | [] -> ""
  in
  let display prefix name =
    let m = match List.rev prefix with m :: _ -> m | [] -> unit_last in
    m ^ "." ^ name
  in
  let do_label tkey (ld : label_declaration) =
    let attrs = ld.ld_attributes @ ld.ld_type.ctyp_attributes in
    let key = tkey ^ "." ^ Ident.name ld.ld_id in
    (match attr_string "wa.guarded_by" attrs with
    | Some lock -> Hashtbl.replace g.g_locks key lock
    | None -> ());
    if has_attr "wa.benign_race" attrs then Hashtbl.replace g.g_benign key ()
  in
  let rec do_items prefix items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_type (_, decls) ->
            List.iter
              (fun (d : type_declaration) ->
                let tkey = display prefix (Ident.name d.typ_id) in
                Hashtbl.replace g.g_decls (Ident.unique_name d.typ_id) tkey;
                match d.typ_kind with
                | Ttype_record lds -> List.iter (do_label tkey) lds
                | _ -> ())
              decls
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) -> (
                    let key = display prefix (Ident.name id) in
                    (match attr_string "wa.guarded_by" vb.vb_attributes with
                    | Some lock -> Hashtbl.replace g.g_locks key lock
                    | None -> ());
                    if has_attr "wa.benign_race" vb.vb_attributes then
                      Hashtbl.replace g.g_benign key ())
                | _ -> ())
              vbs
        | Tstr_module mb -> (
            match mb.mb_id with
            | Some id -> do_module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
            | None -> ())
        | Tstr_recmodule mbs ->
            List.iter
              (fun mb ->
                match mb.mb_id with
                | Some id ->
                    do_module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
                | None -> ())
              mbs
        | Tstr_include incl -> do_module_expr prefix incl.incl_mod
        | _ -> ())
      items
  and do_module_expr prefix me =
    match me.mod_desc with
    | Tmod_structure s -> do_items prefix s.str_items
    | Tmod_constraint (me, _, _, _) -> do_module_expr prefix me
    | Tmod_functor (_, me) -> do_module_expr prefix me
    | _ -> ()
  in
  do_items [] str.str_items;
  g

(* Analysis context --------------------------------------------------- *)

type summaries = {
  tbl : Summary.table;
  facts : (string, Summary.fn_fact) Hashtbl.t;
  srcs : (string, string) Hashtbl.t;
      (* fq -> source path of the unit that defined it.  Whole-program
         diagnoses must attribute each fact to exactly one unit; a
         module-name prefix test is not enough, because a dune library
         wrapper module (Wa_service) is a prefix of every fq in its
         library and would claim them all a second time. *)
  lock_cycles : (string * int * string) list;
      (* (owning function fq, line, message) for every edge of every
         cycle in the global lock-order graph: computed once over the
         whole program, attributed to the unit that owns the edge so
         per-file reports (the unit of caching) stay deterministic *)
}

type ctx = {
  cfg : Config.t;
  src : string;
  self_module : string;
      (* Module defined by [src]: self-references to positive sources
         carry no module qualifier inside their own module. *)
  hot : bool;
  capture_ok : bool;
  quiet : bool;
      (* Extraction mode: collect facts, never flag, never count. *)
  resolver : resolver;
  guards : guards;
  wrappers : (string, int * int) Hashtbl.t;
      (* fq of an in-unit lock-wrapper -> (mutex arg, thunk arg):
         calls run the thunk with the mutex argument held *)
  summaries : summaries option;
  file_allows : string list;
  mutable allow_stack : string list;
  mutable found : violation list;
  mutable closures : int;
  mutable exprs : int;
  mutable guarded : int;  (* guarded accesses certified lock-held *)
  mutable roots : int;  (* [@wa.event_loop] roots certified non-blocking *)
}

let lookup_summary ctx name =
  match ctx.summaries with
  | None -> None
  | Some s -> Summary.lookup s.tbl name

let flag_at ctx ~line ~col rule message =
  if
    (not ctx.quiet)
    && (not (List.mem rule ctx.file_allows))
    && not (List.mem rule ctx.allow_stack)
  then ctx.found <- { file = ctx.src; line; col; rule; message } :: ctx.found

let flag ctx loc rule message =
  let pos = loc.Location.loc_start in
  flag_at ctx ~line:pos.Lexing.pos_lnum
    ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
    rule message

(* Run [f] with the allow-list of [attrs] pushed: suppressions on an
   enclosing expression cover everything beneath it. *)
let with_allows ctx attrs f =
  match allows_of_attrs attrs with
  | [] -> f ()
  | allows ->
      let saved = ctx.allow_stack in
      ctx.allow_stack <- allows @ saved;
      Fun.protect ~finally:(fun () -> ctx.allow_stack <- saved) f

(* Access keys and lock names (see [collect_guards] for the naming
   scheme).  An in-unit record type is resolved through the guard
   table's declaration map; cross-unit types fall back to the last two
   path components. *)
let type_key ctx ty =
  match Types.get_desc ty with
  | Types.Tconstr (Path.Pident id, _, _) ->
      Hashtbl.find_opt ctx.guards.g_decls (Ident.unique_name id)
  | Types.Tconstr (p, _, _) -> (
      match List.rev (resolve_parts ctx.resolver (path_parts p)) with
      | v :: m :: _ -> Some (m ^ "." ^ v)
      | _ -> None)
  | _ -> None

let field_key ctx robj (lbl : Types.label_description) =
  Option.map
    (fun tk -> tk ^ "." ^ lbl.Types.lbl_name)
    (type_key ctx robj.exp_type)

let global_key ctx id =
  Option.map short_fq
    (Hashtbl.find_opt ctx.resolver.r_values (Ident.unique_name id))

(* The name of a mutex expression: a record field ("Server.t.state_mu"),
   a toplevel value ("Metrics.registry_mutex"), or a dotted path.
   Parameters and locals have no stable name and go untracked (lock
   wrappers are the supported way to pass a mutex around). *)
let lock_name ctx e =
  match e.exp_desc with
  | Texp_field (r, _, lbl) -> field_key ctx r lbl
  | Texp_ident (Path.Pident id, _, _) -> global_key ctx id
  | Texp_ident (p, _, _) -> (
      match resolve_parts ctx.resolver (path_parts p) with
      | _ :: _ :: _ as parts -> Some (short_fq (String.concat "." parts))
      | _ -> None)
  | _ -> None

(* Blocking primitives for the event-loop pass.  [Unix.select] is the
   event loop itself; [Unix.read]/[write]/[accept] follow the
   readiness discipline (only called on ready fds) and are excluded —
   a documented model caveat, see DESIGN.md §15. *)
let blocking_prim f =
  match fn_last2 f with
  | Some (Some "Condition", "wait") -> Some "Condition.wait"
  | Some (Some "Thread", "delay") -> Some "Thread.delay"
  | Some (Some "Domain", "join") -> Some "Domain.join"
  | Some (Some "Unix", (("sleep" | "sleepf" | "wait" | "waitpid" | "system") as v))
    ->
      Some ("Unix." ^ v)
  | _ -> None

(* Generic child traversal: applies [f] to every direct subexpression
   of [e] (descending through cases, bindings, etc. exactly once). *)
let iter_children f e =
  let open Tast_iterator in
  let it = { default_iterator with expr = (fun _ e -> f e) } in
  default_iterator.expr it e

(* Local (Pident) identifier occurrences anywhere inside [e0]. *)
let idents_in e0 =
  let acc = ref [] in
  let rec go e =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> acc := Ident.unique_name id :: !acc
    | _ -> ());
    iter_children go e
  in
  go e0;
  !acc

(* Idents bound anywhere inside [e0] (params, lets, match cases, for
   indices): everything else referenced from inside is captured. *)
let bound_idents e0 =
  let tbl = Hashtbl.create 32 in
  let add id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let add_pat p = List.iter add (pat_bound_idents p) in
  let rec go e =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) -> List.iter (fun vb -> add_pat vb.vb_pat) vbs
    | Texp_function { param; cases; _ } ->
        add param;
        List.iter (fun c -> add_pat c.c_lhs) cases
    | Texp_match (_, cases, _) -> List.iter (fun c -> add_pat c.c_lhs) cases
    | Texp_try (_, cases) -> List.iter (fun c -> add_pat c.c_lhs) cases
    | Texp_for (id, _, _, _, _, _) -> add id
    | _ -> ());
    iter_children go e
  in
  go e0;
  tbl

(* Function-spine peeling: the parameters of a toplevel binding, with
   display names and float-ness, plus the innermost body.  Stops at a
   dispatching [function] (multiple cases). *)
let rec peel_params e =
  match e.exp_desc with
  | Texp_function { param; cases = [ c ]; _ } ->
      let unique, display, fl =
        match c.c_lhs.pat_desc with
        | Tpat_var (id, _) ->
            (Ident.unique_name id, Ident.name id, is_float_type c.c_lhs.pat_type)
        | _ ->
            ( Ident.unique_name param,
              Ident.name param,
              is_float_type c.c_lhs.pat_type )
      in
      let rest, body = peel_params c.c_rhs in
      ((unique, display, fl) :: rest, body)
  | _ -> ([], e)

(* Pass 1 + 5: domain-capture and exn-escape -------------------------- *)

let parallel_entries = [ "iter"; "init"; "map_array"; "fold_float_max"; "map" ]

let is_parallel_entry e =
  match fn_last2 e with
  | Some (Some "Parallel", v) -> List.mem v parallel_entries
  | _ -> false

let raise_like = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let array_set_fns =
  [
    ("Array", "set"); ("Array", "unsafe_set"); ("Bytes", "set");
    ("Bytes", "unsafe_set");
  ]

let container_mut_fns =
  [
    ("Hashtbl", "add"); ("Hashtbl", "replace"); ("Hashtbl", "remove");
    ("Hashtbl", "reset"); ("Hashtbl", "clear");
    ("Buffer", "add_char"); ("Buffer", "add_string"); ("Buffer", "add_bytes");
    ("Buffer", "add_buffer"); ("Buffer", "clear"); ("Buffer", "reset");
    ("Queue", "add"); ("Queue", "push"); ("Queue", "pop"); ("Queue", "take");
    ("Queue", "clear"); ("Queue", "transfer");
    ("Stack", "push"); ("Stack", "pop"); ("Stack", "clear");
  ]

(* The variable ultimately written through an lvalue-ish expression:
   [x], [x.contents], [x.(i)], [!x] chains. *)
let rec head_ident e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (e, id)
  | Texp_field (inner, _, _) -> head_ident inner
  | Texp_apply (f, args) when matches_table [ ("Array", "get") ] f
                              || is_stdlib_fn [ "!" ] f -> (
      match args with
      | (_, Some first) :: _ -> head_ident first
      | _ -> None)
  | _ -> None

let describe_write = function
  | `Ref -> "assignment to captured ref"
  | `Field -> "mutation of a field of captured state"
  | `Array -> "write into captured array"
  | `Container -> "mutating call on captured container"

(* Exception-handler names of a try case pattern; "*" is a catch-all
   (unknown shapes are treated as catch-alls: quieter, not sound). *)
let rec handler_names p acc =
  match p.pat_desc with
  | Tpat_construct (_, cd, _, _) -> cd.Types.cstr_name :: acc
  | Tpat_or (a, b, _) -> handler_names a (handler_names b acc)
  | Tpat_alias (inner, _, _) -> handler_names inner acc
  | _ -> "*" :: acc

let caught_of_cases cases =
  List.fold_left (fun acc c -> handler_names c.c_lhs acc) [] cases

let is_fun_protect e =
  match fn_last2 e with Some (Some "Fun", "protect") -> true | _ -> false

(* Positional argument expressions, in order. *)
let positional_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

(* Map callee parameter display names to argument expressions:
   labelled arguments by name, then positional ones in declaration
   order over the remaining parameters. *)
let align_args s_params args =
  let labelled =
    List.filter_map
      (fun (l, a) ->
        match (l, a) with
        | (Asttypes.Labelled n | Asttypes.Optional n), Some a -> Some (n, a)
        | _ -> None)
      args
  in
  let positional = positional_args args in
  let unlabelled =
    List.filter (fun p -> not (List.mem_assoc p labelled)) s_params
  in
  let rec zip ps qs =
    match (ps, qs) with
    | p :: ps', q :: qs' -> (p, q) :: zip ps' qs'
    | _ -> []
  in
  labelled @ zip unlabelled positional

(* A lock-wrapper shape: [let locked mu f = Mutex.lock mu;
   Fun.protect ~finally:(fun () -> Mutex.unlock mu) f] (or a direct
   [Mutex.protect mu f] eta-expansion).  Calls to such a wrapper run
   the thunk argument with the mutex argument held; [params] are the
   wrapper's own parameters in curried order. *)
let wrapper_shape params body =
  let idx e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        List.find_index
          (fun (u, _, _) -> String.equal u (Ident.unique_name id))
          params
    | _ -> None
  in
  match body.exp_desc with
  | Texp_sequence (a, b) -> (
      match (a.exp_desc, b.exp_desc) with
      | Texp_apply (lf, largs), Texp_apply (pf, pargs)
        when matches_table [ ("Mutex", "lock") ] lf && is_fun_protect pf -> (
          match (positional_args largs, positional_args pargs) with
          | [ m ], [ th ] -> (
              match (idx m, idx th) with
              | Some i, Some j -> Some (i, j)
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | Texp_apply (pf, pargs) when matches_table [ ("Mutex", "protect") ] pf -> (
      match positional_args pargs with
      | [ m; th ] -> (
          match (idx m, idx th) with
          | Some i, Some j -> Some (i, j)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Spawn points: closures handed to these run on another domain, so
   the creator's held locks do not apply inside and nothing inside
   can block the creator. *)
let spawn_like_fn f =
  match fn_last2 f with
  | Some (Some "Pool", "submit") | Some (Some "Domain", "spawn") -> true
  | _ -> is_parallel_entry f

(* Analyze one closure that runs as a Parallel chunk: writes to free
   mutable state and raises that can cross the chunk boundary, both
   directly and — when summaries are available — through any call
   chain. *)
let analyze_chunk_closure ctx closure =
  ctx.closures <- ctx.closures + 1;
  let bound = bound_idents closure in
  let free id = not (Hashtbl.mem bound (Ident.unique_name id)) in
  let check_write kind target loc =
    match head_ident target with
    | Some (root, id) when free id && not (is_atomic_type root.exp_type) ->
        flag ctx loc rule_domain_capture
          (Printf.sprintf
             "%s '%s' inside a Parallel chunk closure: unsynchronized \
              mutable state shared across worker domains (use Atomic.t, \
              preallocate disjoint slices, or merge per-domain results \
              after the join)"
             (describe_write kind) (Ident.name id))
    | _ -> ()
  in
  let check_call e f args caught =
    match resolve_fn ctx.resolver f with
    | None -> ()
    | Some callee -> (
        match lookup_summary ctx callee with
        | None -> ()
        | Some s ->
            (if not (List.is_empty s.Summary.s_global_writes) then
               flag ctx e.exp_loc rule_domain_capture
                 (Printf.sprintf
                    "call to %s inside a Parallel chunk closure writes \
                     shared state (%s): unsynchronized across worker domains"
                    (short_fq callee)
                    (String.concat "; " s.Summary.s_global_writes)));
            (let positional = positional_args args in
             List.iter
               (fun j ->
                 match List.nth_opt positional j with
                 | Some arg -> (
                     match head_ident arg with
                     | Some (root, id)
                       when free id && not (is_atomic_type root.exp_type) ->
                         flag ctx e.exp_loc rule_domain_capture
                           (Printf.sprintf
                              "call to %s inside a Parallel chunk closure \
                               writes through its argument '%s', captured \
                               mutable state shared across worker domains"
                              (short_fq callee) (Ident.name id))
                     | _ -> ())
                 | None -> ())
               s.Summary.s_param_writes);
            let escaping =
              if List.mem "*" caught then Summary.SSet.empty
              else
                Summary.SSet.filter
                  (fun exn -> not (List.mem exn caught))
                  s.Summary.s_raises
            in
            if not (Summary.SSet.is_empty escaping) then
              flag ctx e.exp_loc rule_exn_escape
                (Printf.sprintf
                   "call to %s may raise %s, which would cross the Parallel \
                    chunk boundary: no matching handler inside the closure"
                   (short_fq callee)
                   (String.concat ", " (Summary.SSet.elements escaping))))
  in
  let rec go ~caught e =
    with_allows ctx e.exp_attributes @@ fun () ->
    (match e.exp_desc with
    | Texp_setfield (obj, _, _, _) -> check_write `Field obj e.exp_loc
    | Texp_apply (f, args) -> (
        let positional = positional_args args in
        match (fn_last2 f, positional) with
        | Some (None, ":="), lhs :: _ -> check_write `Ref lhs e.exp_loc
        | Some (None, ("incr" | "decr")), r :: _ -> check_write `Ref r e.exp_loc
        | Some (Some m, v), first :: _ when List.mem (m, v) array_set_fns ->
            check_write `Array first e.exp_loc
        | Some (Some m, v), first :: _ when List.mem (m, v) container_mut_fns
          ->
            check_write `Container first e.exp_loc
        | Some (None, v), _ when List.mem v raise_like && List.is_empty caught
          ->
            flag ctx e.exp_loc rule_exn_escape
              (Printf.sprintf
                 "'%s' can cross the Parallel chunk boundary: no enclosing \
                  try inside the closure (handle it locally or return an \
                  error value)"
                 v)
        | _ -> check_call e f args caught)
    | Texp_assert _ when List.is_empty caught ->
        flag ctx e.exp_loc rule_exn_escape
          "assert failure would cross the Parallel chunk boundary: no \
           enclosing try inside the closure"
    | _ -> ());
    match e.exp_desc with
    | Texp_try (body, cases) ->
        go ~caught:(caught_of_cases cases @ caught) body;
        List.iter
          (fun c ->
            Option.iter (go ~caught) c.c_guard;
            go ~caught c.c_rhs)
          cases
    | Texp_apply (f, args) when is_fun_protect f ->
        (* Fun.protect delegates cleanup deliberately: its thunk and
           ~finally run under the protection discipline the caller
           chose, so raises inside are not chunk-boundary escapes. *)
        List.iter
          (fun (_, a) -> Option.iter (go ~caught:("*" :: caught)) a)
          args
    | _ -> iter_children (go ~caught) e
  in
  go ~caught:[] closure

(* Find Parallel fan-out applications and analyze their function
   arguments, resolving let-bound closures by identifier. *)
let scan_parallel ctx fns e0 =
  let resolve a =
    match a.exp_desc with
    | Texp_function _ -> Some a
    | Texp_ident (Path.Pident id, _, _) -> (
        match Hashtbl.find_opt fns (Ident.unique_name id) with
        | Some body -> Some body
        | None -> None)
    | _ -> None
  in
  let rec go e =
    with_allows ctx e.exp_attributes @@ fun () ->
    (match e.exp_desc with
    | Texp_apply (f, args) when is_parallel_entry f ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some a when is_arrow_type a.exp_type -> (
                match resolve a with
                | Some closure -> analyze_chunk_closure ctx closure
                | None -> ())
            | _ -> ())
          args
    | _ -> ());
    iter_children go e
  in
  go e0

(* Collect every let-bound function body of the structure, keyed by
   the binder's unique name, so [Parallel.init n edges_of] resolves. *)
let collect_fn_bindings str =
  let tbl = Hashtbl.create 32 in
  let record vb =
    (* Any arrow-typed binding counts: [let value_of = match engine
       with ... -> fun i -> ...] still carries the chunk closures in
       its branches, and the write/raise scan is purely syntactic. *)
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) when is_arrow_type vb.vb_expr.exp_type ->
        Hashtbl.replace tbl (Ident.unique_name id) vb.vb_expr
    | _ -> ()
  in
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      value_binding =
        (fun it vb ->
          record vb;
          default_iterator.value_binding it vb);
    }
  in
  it.structure it str;
  tbl

(* Pass: Atomic check-then-act ---------------------------------------- *)

(* [if Atomic.get a ... then Atomic.set a v] leaves a race window
   between the read and the write: another domain can update [a] after
   the check commits but before the act lands. Flag branch-guarded
   sets whose guard read the same atom (identified syntactically:
   same ident, module path, or record field) and point at
   [compare_and_set]. *)
let scan_check_then_act ctx e0 =
  let flagged = Hashtbl.create 4 in
  let atom_key env e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        let u = Ident.unique_name id in
        match Hashtbl.find_opt env u with
        | Some k -> Some k
        | None -> Some ("i:" ^ u))
    | Texp_ident (p, _, _) -> Some ("p:" ^ Path.name p)
    | Texp_field (r, _, lbl) -> (
        match r.exp_desc with
        | Texp_ident (Path.Pident id, _, _) ->
            Some ("f:" ^ Ident.unique_name id ^ "." ^ lbl.Types.lbl_name)
        | Texp_ident (p, _, _) ->
            Some ("f:" ^ Path.name p ^ "." ^ lbl.Types.lbl_name)
        | _ -> None)
    | _ -> None
  in
  (* Atoms read inside the scrutinee, directly ([Atomic.get a]) or via
     a let-bound alias of an earlier get. *)
  let rec gets env acc e =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
        match (fn_last2 f, positional_args args) with
        | Some (Some "Atomic", "get"), [ a ] ->
            Option.iter (fun k -> acc := k :: !acc) (atom_key env a)
        | _ -> ())
    | Texp_ident (Path.Pident id, _, _) -> (
        match Hashtbl.find_opt env (Ident.unique_name id) with
        | Some k -> acc := k :: !acc
        | None -> ())
    | _ -> ());
    iter_children (gets env acc) e
  in
  let rec sets env keys e =
    with_allows ctx e.exp_attributes @@ fun () ->
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
        match (fn_last2 f, positional_args args) with
        | Some (Some "Atomic", "set"), a :: _ -> (
            match atom_key env a with
            | Some k
              when List.mem k keys
                   && not (Hashtbl.mem flagged e.exp_loc.Location.loc_start)
              ->
                Hashtbl.add flagged e.exp_loc.Location.loc_start ();
                flag ctx e.exp_loc rule_check_then_act
                  "Atomic.set guarded by a branch on Atomic.get of the \
                   same atom: the check-then-act window races with other \
                   domains — use Atomic.compare_and_set in a retry loop \
                   (or Atomic.fetch_and_add for counters)"
            | _ -> ())
        | _ -> ())
    | _ -> ());
    iter_children (sets env keys) e
  in
  let rec go env e =
    with_allows ctx e.exp_attributes @@ fun () ->
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var (id, _), Texp_apply (f, args) -> (
                match (fn_last2 f, positional_args args) with
                | Some (Some "Atomic", "get"), [ a ] ->
                    Option.iter
                      (Hashtbl.replace env (Ident.unique_name id))
                      (atom_key env a)
                | _ -> ())
            | _ -> ())
          vbs
    | Texp_ifthenelse (cond, bt, bf) ->
        let acc = ref [] in
        gets env acc cond;
        if not (List.is_empty !acc) then begin
          sets env !acc bt;
          Option.iter (sets env !acc) bf
        end
    | Texp_match (scrut, cases, _) ->
        let acc = ref [] in
        gets env acc scrut;
        if not (List.is_empty !acc) then
          List.iter (fun c -> sets env !acc c.c_rhs) cases
    | _ -> ());
    iter_children (go env) e
  in
  go (Hashtbl.create 8) e0

(* Pass 2: unit / log-domain abstract interpretation ------------------ *)

type dom = Power | Distance | DistPow | Gain | LogDom | Dimless | Unknown

let dom_name = function
  | Power -> "power"
  | Distance -> "distance"
  | DistPow -> "distance^alpha"
  | Gain -> "gain"
  | LogDom -> "log-domain"
  | Dimless -> "dimensionless"
  | Unknown -> "unknown"

let dom_of_name = function
  | "power" -> Power
  | "distance" -> Distance
  | "distance^alpha" -> DistPow
  | "gain" -> Gain
  | "log-domain" -> LogDom
  | "dimensionless" -> Dimless
  | _ -> Unknown

let dom_equal (a : dom) (b : dom) = a = b

let is_linear_quantity = function
  | Power | Distance | DistPow | Gain -> true
  | LogDom | Dimless | Unknown -> false

(* Incompatible under + / - / comparison: log vs linear, or two
   distinct linear quantities.  Dimensionless mixes with anything
   (thresholds, accumulator seeds, log-domain shifts). *)
let mixes a b =
  match (a, b) with
  | LogDom, x | x, LogDom -> is_linear_quantity x
  | _ ->
      is_linear_quantity a && is_linear_quantity b && not (dom_equal a b)

let join a b = if dom_equal a b then a else Unknown

let distance_sources =
  [
    ("Linkset", "length"); ("Linkset", "dist");
    ("Linkset", "sender_to_receiver"); ("Linkset", "min_length");
    ("Linkset", "max_length"); ("Link", "length"); ("Link", "min_distance");
    ("Link", "sender_to_receiver"); ("Vec2", "dist"); ("Vec2", "norm");
    ("Link_index", "class_min_length"); ("Link_index", "class_max_length");
  ]

let power_sources = [ ("Power", "value"); ("Power", "oblivious_constant") ]
let power_array_sources = [ ("Power", "vector") ]

let dimless_sources =
  [
    ("Affectance", "additive"); ("Affectance", "additive_on_set");
    ("Affectance", "additive_from_set"); ("Affectance", "relative");
    ("Affectance", "relative_total"); ("Affectance", "mst_longer_pressure");
    ("Feasibility", "sinr"); ("Feasibility", "margin");
    ("Linkset", "diversity");
  ]

let logdom_sources =
  [ ("Logfloat", "log_value"); ("Growth", "log2"); ("Float", "log");
    ("Float", "log10"); ("Float", "log2") ]

let params_field_dom lbl_name =
  match lbl_name with
  | "noise" -> Some Power
  | "alpha" | "beta" | "epsilon" -> Some Dimless
  | _ -> None

let is_params_record ty =
  match type_last2 ty with
  | Some (Some "Params", "t") | Some (None, "t") -> true
  | _ -> false

let mix_message op a b =
  Printf.sprintf
    "%s mixes %s and %s operands: linear and log-domain (or distinct \
     physical) quantities never meet under %s — convert explicitly \
     (exp/log, Logfloat.to_float) or normalize the units first"
    op (dom_name a) (dom_name b) op

let rec infer ctx env e : dom =
  ctx.exprs <- ctx.exprs + 1;
  with_allows ctx e.exp_attributes @@ fun () ->
  let bind_pat pat d =
    match pat.pat_desc with
    | Tpat_var (id, _) -> Hashtbl.replace env (Ident.unique_name id) d
    | _ -> ()
  in
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float _) -> Dimless
  | Texp_constant _ -> Unknown
  | Texp_ident (Path.Pident id, _, _) -> (
      match Hashtbl.find_opt env (Ident.unique_name id) with
      | Some d -> d
      | None -> Unknown)
  | Texp_ident _ -> Unknown
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          with_allows ctx vb.vb_attributes @@ fun () ->
          bind_pat vb.vb_pat (infer ctx env vb.vb_expr))
        vbs;
      infer ctx env body
  | Texp_function { arg_label; param; cases; _ } ->
      let param_dom =
        match arg_label with
        | Asttypes.Labelled "power" | Asttypes.Optional "power" -> Some Power
        | _ -> if String.equal (Ident.name param) "power" then Some Power
               else None
      in
      Option.iter
        (fun d -> Hashtbl.replace env (Ident.unique_name param) d)
        param_dom;
      List.iter
        (fun c ->
          (match (c.c_lhs.pat_desc, param_dom) with
          | Tpat_var (id, _), Some d ->
              Hashtbl.replace env (Ident.unique_name id) d
          | Tpat_var (id, _), None when String.equal (Ident.name id) "power"
            ->
              Hashtbl.replace env (Ident.unique_name id) Power
          | _ -> ());
          Option.iter (fun g -> ignore (infer ctx env g)) c.c_guard;
          ignore (infer ctx env c.c_rhs))
        cases;
      Unknown
  | Texp_ifthenelse (c, a, b) -> (
      ignore (infer ctx env c);
      let da = infer ctx env a in
      match b with
      | Some b -> join da (infer ctx env b)
      | None -> Unknown)
  | Texp_sequence (a, b) ->
      ignore (infer ctx env a);
      infer ctx env b
  | Texp_match (s, cases, _) ->
      ignore (infer ctx env s);
      List.fold_left
        (fun acc c ->
          Option.iter (fun g -> ignore (infer ctx env g)) c.c_guard;
          join acc (infer ctx env c.c_rhs))
        Unknown cases
  | Texp_field (r, _, lbl) ->
      ignore (infer ctx env r);
      if is_params_record lbl.Types.lbl_res then
        Option.value ~default:Unknown (params_field_dom lbl.Types.lbl_name)
      else Unknown
  | Texp_array es ->
      List.fold_left
        (fun acc el ->
          let d = infer ctx env el in
          match acc with None -> Some d | Some a -> Some (join a d))
        None es
      |> Option.value ~default:Unknown
  | Texp_open (_, body) -> infer ctx env body
  | Texp_apply (f, args) -> infer_apply ctx env e f args
  | _ ->
      iter_children (fun c -> ignore (infer ctx env c)) e;
      Unknown

and infer_apply ctx env e f args =
  let positional = positional_args args in
  (* Labelled ~power: arguments expect a linear-domain value. *)
  List.iter
    (fun (lbl, a) ->
      match (lbl, a) with
      | Asttypes.Labelled "power", Some a when is_float_type a.exp_type ->
          if dom_equal (infer ctx env a) LogDom then
            flag ctx a.exp_loc rule_unit_mix
              "log-domain float passed to a linear-domain ~power: argument \
               (convert with Logfloat.to_float / exp first)"
      | _ -> ())
    args;
  let infer_rest skip =
    List.iter
      (fun (_, a) ->
        match a with
        | Some a when not (List.memq a skip) -> ignore (infer ctx env a)
        | _ -> ())
      args
  in
  let binary k =
    match positional with
    | [ a; b ] ->
        let da = infer ctx env a and db = infer ctx env b in
        infer_rest [ a; b ];
        k a b da db
    | _ ->
        infer_rest [];
        Unknown
  in
  let flag_mix op a b da db =
    if mixes da db then
      flag ctx e.exp_loc rule_unit_mix (mix_message op da db);
    ignore a;
    ignore b
  in
  match fn_last2 f with
  | Some (None, (("+." | "-.") as op)) ->
      binary (fun a b da db ->
          flag_mix op a b da db;
          match (da, db) with
          | d, Dimless | Dimless, d -> d
          | da, db -> join da db)
  | Some (None, "*.") ->
      binary (fun _ _ da db ->
          match (da, db) with
          | d, Dimless | Dimless, d -> d
          | Power, Gain | Gain, Power -> Power
          | DistPow, Gain | Gain, DistPow -> Dimless
          | _ -> Unknown)
  | Some (None, "/.") ->
      binary (fun _ _ da db ->
          match (da, db) with
          | da, db when dom_equal da db && not (dom_equal da Unknown) ->
              Dimless
          | Power, DistPow -> Power
          | Dimless, DistPow -> Gain
          | d, Dimless -> d
          | LogDom, _ | _, LogDom -> Unknown
          | _ -> Unknown)
  | Some (None, "**") ->
      binary (fun _ _ da _ ->
          match da with
          | Distance -> DistPow
          | Dimless -> Dimless
          | _ -> Unknown)
  | Some (None, "~-.") -> (
      match positional with
      | [ a ] -> infer ctx env a
      | _ ->
          infer_rest [];
          Unknown)
  | Some (None, (("<" | "<=" | ">" | ">=" | "=" | "<>") as op))
    when List.length positional = 2
         && List.for_all (fun a -> is_float_type a.exp_type) positional ->
      binary (fun a b da db ->
          flag_mix (Printf.sprintf "comparison (%s)" op) a b da db;
          Unknown)
  | Some (Some "Float", (("compare" | "equal" | "min" | "max") as op)) ->
      binary (fun a b da db ->
          flag_mix ("Float." ^ op) a b da db;
          match op with "min" | "max" -> join da db | _ -> Unknown)
  | Some (Some "Logfloat", "of_float") ->
      (match positional with
      | [ a ] ->
          if dom_equal (infer ctx env a) LogDom then
            flag ctx e.exp_loc rule_unit_mix
              "log-domain float passed to Logfloat.of_float (double log): \
               use Logfloat.of_log for values that are already logarithms"
      | _ -> infer_rest []);
      Unknown
  | Some (Some "Logfloat", "of_log") ->
      (match positional with
      | [ a ] ->
          let da = infer ctx env a in
          if is_linear_quantity da then
            flag ctx e.exp_loc rule_unit_mix
              (Printf.sprintf
                 "linear-domain %s passed to Logfloat.of_log, which expects \
                  a logarithm: use Logfloat.of_float"
                 (dom_name da))
      | _ -> infer_rest []);
      Unknown
  | Some (None, ("log" | "log10" | "log1p")) ->
      infer_rest [];
      LogDom
  | Some (None, "exp") | Some (Some "Float", "exp") ->
      infer_rest [];
      Unknown
  | Some (None, "float_of_int") | Some (Some "Float", "of_int") ->
      infer_rest [];
      Dimless
  | Some (Some "Float", "abs") -> (
      match positional with
      | [ a ] -> infer ctx env a
      | _ ->
          infer_rest [];
          Unknown)
  | Some (Some ("Array" | "Linkset"), ("get" | "unsafe_get")) -> (
      match positional with
      | arr :: rest ->
          List.iter (fun a -> ignore (infer ctx env a)) rest;
          infer ctx env arr
      | [] -> Unknown)
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  distance_sources) ->
      infer_rest [];
      Distance
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  (power_sources @ power_array_sources)) ->
      infer_rest [];
      Power
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  dimless_sources) ->
      infer_rest [];
      Dimless
  | Some key when List.mem key (List.map (fun (m, v) -> (Some m, v))
                                  logdom_sources) ->
      infer_rest [];
      LogDom
  | _ ->
      ignore (infer ctx env f);
      infer_rest [];
      (* Interprocedural fallback: the callee's summarized result
         domain (only for a saturated float-valued application). *)
      if is_float_type e.exp_type then
        match Option.bind (resolve_fn ctx.resolver f) (lookup_summary ctx) with
        | Some s -> dom_of_name s.Summary.s_dom
        | None -> Unknown
      else Unknown

(* Pass 3: float-safety dataflow -------------------------------------- *)

module SSet = Set.Make (String)

let float_const_nonzero s =
  match float_of_string_opt s with
  | Some v -> Float.is_finite v && not (Float.equal v 0.0)
  | None -> false

let float_const_value e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float s) -> float_of_string_opt s
  | _ -> None

let rec always_raises e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match fn_last2 f with
      | Some (None, v) -> List.mem v raise_like
      | _ -> false)
  | Texp_sequence (_, b) -> always_raises b
  | Texp_let (_, _, b) -> always_raises b
  | Texp_ifthenelse (_, a, Some b) -> always_raises a && always_raises b
  | _ -> false

(* A (possibly partial) application of a configured positivity-
   preserving map — [Params.alpha_pow p] and friends. *)
let positive_map_partial ctx e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match fn_last2 f with
      | Some (Some m, v) -> List.mem (m, v) ctx.cfg.Config.positive_maps
      | _ -> false)
  | _ -> false

(* A conservative lower bound for a float expression, rooted in the
   whole-program record-field invariant table: [p.Params.alpha] is
   [> 2.0] because every construction site of [Params.t] in the
   program proves it. *)
let rec lower_bound ctx e : Summary.bound option =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float s) -> (
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> Some { Summary.lb = v; strict = false }
      | _ -> None)
  | Texp_field (_, _, lbl) when is_float_type e.exp_type -> (
      match ctx.summaries with
      | None -> None
      | Some s -> (
          match type_fq ctx.resolver lbl.Types.lbl_res with
          | Some tfq ->
              Summary.field_bound s.tbl ~type_fq:tfq ~field:lbl.Types.lbl_name
          | None -> None))
  | Texp_open (_, b) -> lower_bound ctx b
  | Texp_apply (f, args) -> (
      let positional = positional_args args in
      match (fn_last2 f, positional) with
      | Some (None, "-."), [ a; b ] -> (
          match (lower_bound ctx a, float_const_value b) with
          | Some { Summary.lb; strict }, Some c
            when Float.is_finite c ->
              Some { Summary.lb = lb -. c; strict }
          | _ -> None)
      | Some (None, "+."), [ a; b ] -> (
          match (lower_bound ctx a, lower_bound ctx b) with
          | Some ba, Some bb ->
              Some
                {
                  Summary.lb = ba.Summary.lb +. bb.Summary.lb;
                  strict = ba.Summary.strict || bb.Summary.strict;
                }
          | _ -> None)
      | Some (None, "**"), [ base; _ ] -> (
          match float_const_value base with
          | Some c when c > 0.0 -> Some { Summary.lb = 0.0; strict = true }
          | _ -> None)
      | Some (Some "Float", "max"), [ a; b ] -> (
          match (lower_bound ctx a, lower_bound ctx b) with
          | Some ba, Some bb ->
              if ba.Summary.lb >= bb.Summary.lb then Some ba else Some bb
          | Some b, None | None, Some b -> Some b
          | None, None -> None)
      | _ -> None)
  | _ -> None

(* [nonzero ctx guards pos maps e]: the "provably nonzero on this
   path" judgment described in the module header.  [maps] holds local
   idents bound to positivity-preserving closures (see
   [positive_map_partial]): applying one to a nonzero operand is
   nonzero.  With summaries, three interprocedural provers kick in:
   record-field lower bounds, callees summarized as returning a
   positive float, and module-level positive constants. *)
let rec nonzero ctx guards pos maps e =
  let self = nonzero ctx guards pos maps in
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float s) -> float_const_nonzero s
  | Texp_ident (Path.Pident id, _, _) -> (
      let n = Ident.unique_name id in
      SSet.mem n guards || SSet.mem n pos
      ||
      (* A module-level constant summarized as positive
         (e.g. [radius_slack = 1.0 +. 1e-9]). *)
      match Hashtbl.find_opt ctx.resolver.r_values n with
      | Some fq -> (
          match lookup_summary ctx fq with
          | Some s -> s.Summary.s_pos && List.is_empty s.Summary.s_params
          | None -> false)
      | None -> false)
  | Texp_field _ -> Summary.bound_positive (lower_bound ctx e)
  | Texp_open (_, b) -> self b
  | Texp_apply (f, args) -> (
      let positional = positional_args args in
      let last_positional () =
        match List.rev positional with a :: _ -> self a | [] -> false
      in
      match (fn_last2 f, positional) with
      | Some (Some m, v), _ when List.mem (m, v) ctx.cfg.Config.positive_sources
        ->
          true
      | Some (None, v), _
        when List.mem (ctx.self_module, v) ctx.cfg.Config.positive_sources ->
          true
      | Some (Some m, v), _ when List.mem (m, v) ctx.cfg.Config.positive_maps
        ->
          (* Fully applied positivity-preserving map: positive iff its
             (last) operand is. *)
          last_positional ()
      | _, _
        when (match f.exp_desc with
             | Texp_ident (Path.Pident id, _, _) ->
                 SSet.mem (Ident.unique_name id) maps
             | _ -> false) ->
          last_positional ()
      | Some (None, "exp"), _ | Some (Some "Float", "exp"), _ -> true
      | Some (None, ("log" | "log10")), [ arg ] -> (
          (* log of a constant other than 1 is a nonzero constant. *)
          match arg.exp_desc with
          | Texp_constant (Asttypes.Const_float s) -> (
              match float_of_string_opt s with
              | Some v -> v > 0.0 && not (Float.equal v 1.0)
              | None -> false)
          | _ -> false)
      | Some (None, "**"), [ base; _ ] -> self base
      | Some (None, ("*." | "/." | "+.")), [ a; b ] -> self a && self b
      | Some (None, "~-."), [ a ] -> self a
      | Some (Some "Float", "abs"), [ a ] -> self a
      | Some (Some "Float", "min"), [ a; b ] -> self a && self b
      | Some (Some "Float", "max"), [ a; b ] ->
          self a || self b
          || List.exists
               (fun x ->
                 match x.exp_desc with
                 | Texp_constant (Asttypes.Const_float s) ->
                     float_const_nonzero s
                 | _ -> false)
               [ a; b ]
      | Some (Some "Array", ("get" | "unsafe_get")), arr :: _ -> self arr
      | _ ->
          is_float_type e.exp_type
          && ((match
                 Option.bind (resolve_fn ctx.resolver f) (lookup_summary ctx)
               with
              | Some s -> s.Summary.s_pos
              | None -> false)
             || Summary.bound_positive (lower_bound ctx e)))
  | _ ->
      (* Fallback: any identifier inside the operand is covered by an
         enclosing guard. *)
      List.exists (fun n -> SSet.mem n guards) (idents_in e)

let guard_idents e = SSet.of_list (idents_in e)

let sort_fns =
  [
    ("List", "sort"); ("List", "stable_sort"); ("List", "fast_sort");
    ("List", "sort_uniq"); ("Array", "sort"); ("Array", "stable_sort");
    ("Array", "fast_sort");
  ]

(* Positive-array invariant: [let x = Array.make _ c] with a nonzero
   float [c], where every write to [x] has a statically nonzero
   right-hand side, every call passing [x] is summarized as not
   writing that parameter, and [x] never escapes otherwise.  Elements
   of such arrays are nonzero forever. *)
let posarrays ctx e0 =
  match ctx.summaries with
  | None -> SSet.empty
  | Some _ ->
      let cands = Hashtbl.create 4 in
      let rec collect e =
        (match e.exp_desc with
        | Texp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
                | Tpat_var (id, _), Texp_apply (f, args)
                  when matches_table [ ("Array", "make") ] f -> (
                    match positional_args args with
                    | [ _; init ] -> (
                        match float_const_value init with
                        | Some v
                          when Float.is_finite v && not (Float.equal v 0.0) ->
                            Hashtbl.replace cands (Ident.unique_name id) true
                        | _ -> ())
                    | _ -> ())
                | _ -> ())
              vbs
        | _ -> ());
        iter_children collect e
      in
      collect e0;
      if Hashtbl.length cands = 0 then SSet.empty
      else begin
        let disqualify n =
          if Hashtbl.mem cands n then Hashtbl.replace cands n false
        in
        let is_cand e =
          match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _)
            when Hashtbl.mem cands (Ident.unique_name id) ->
              Some (Ident.unique_name id)
          | _ -> None
        in
        (* Statically nonzero RHS for a write: constants, floored
           maxes, powers, products of those. *)
        let static_nonzero e = nonzero ctx SSet.empty SSet.empty SSet.empty e in
        let rec scan e =
          match e.exp_desc with
          | Texp_apply (f, args) -> (
              let positional = positional_args args in
              match (fn_last2 f, positional) with
              | Some (Some ("Array" | "Bytes"), ("set" | "unsafe_set")),
                arr :: rest -> (
                  (match (is_cand arr, List.rev rest) with
                  | Some n, rhs :: _ ->
                      if not (static_nonzero rhs) then disqualify n
                  | Some n, [] -> disqualify n
                  | None, _ -> ());
                  List.iter scan rest;
                  match is_cand arr with Some _ -> () | None -> scan arr)
              | ( Some
                    (Some "Array", ("get" | "unsafe_get" | "length" | "copy")),
                  arr :: rest ) ->
                  (match is_cand arr with Some _ -> () | None -> scan arr);
                  List.iter scan rest
              | _ ->
                  (* A call: arguments that are candidate arrays must
                     be summarized as unwritten parameters. *)
                  let callee =
                    Option.bind (resolve_fn ctx.resolver f) (lookup_summary ctx)
                  in
                  List.iteri
                    (fun j a ->
                      match is_cand a with
                      | Some n -> (
                          match callee with
                          | Some s
                            when not (List.mem j s.Summary.s_param_writes) ->
                              ()
                          | _ -> disqualify n)
                      | None -> scan a)
                    positional;
                  (* Non-positional (labelled) occurrences escape. *)
                  List.iter
                    (fun (lbl, a) ->
                      match (lbl, a) with
                      | Asttypes.Nolabel, _ -> ()
                      | _, Some a -> (
                          match is_cand a with
                          | Some n -> disqualify n
                          | None -> scan a)
                      | _, None -> ())
                    args;
                  scan f)
          | Texp_ident (Path.Pident id, _, _)
            when Hashtbl.mem cands (Ident.unique_name id) ->
              (* Bare occurrence outside the allowed shapes: escape. *)
              disqualify (Ident.unique_name id)
          | Texp_let (_, vbs, body) ->
              List.iter
                (fun vb ->
                  match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
                  | Tpat_var _, Texp_apply (f, args)
                    when matches_table [ ("Array", "make") ] f ->
                      List.iter (fun (_, a) -> Option.iter scan a) args
                  | _ -> scan vb.vb_expr)
                vbs;
              scan body
          | _ -> iter_children scan e
        in
        scan e0;
        Hashtbl.fold
          (fun n ok acc -> if ok then SSet.add n acc else acc)
          cands SSet.empty
      end

(* The per-binding context the float walk runs under: the enclosing
   toplevel function's parameters (for precondition inference and
   discharge) and, in collect mode, the accumulator preconditions are
   recorded into. *)
type fw_fn = {
  fw_fq : string option;
  fw_params : (string * string * bool) list;  (* unique, display, float *)
  fw_collect : string list ref option;  (* Some acc: extraction mode *)
}

let float_walk ctx fw e0 =
  let float_params = List.filter (fun (_, _, fl) -> fl) fw.fw_params in
  let rescued guards pos maps den =
    (* Can the operand be proven if some float parameters are assumed
       positive?  Singletons first, then the whole set. *)
    let with_extra extra =
      nonzero ctx guards (SSet.union pos (SSet.of_list extra)) maps den
    in
    match
      List.find_opt (fun (u, _, _) -> with_extra [ u ]) float_params
    with
    | Some (_, d, _) -> Some [ d ]
    | None ->
        let all = List.map (fun (u, _, _) -> u) float_params in
        if (not (List.is_empty all)) && with_extra all then begin
          let den_ids = idents_in den in
          match
            List.filter_map
              (fun (u, d, _) -> if List.mem u den_ids then Some d else None)
              float_params
          with
          | [] -> None
          | ds -> Some ds
        end
        else None
  in
  let check_nonzero guards pos maps ~in_sort what den loc =
    if not (nonzero ctx guards pos maps den) then
      match fw.fw_collect with
      | Some acc ->
          (* Extraction: an unprovable operand rescued by parameters
             becomes a precondition; anything else stays silent here
             (the check-mode walk owns the diagnostics). *)
          if not in_sort then (
            match rescued guards pos maps den with
            | Some ds -> acc := ds @ !acc
            | None -> ())
      | None ->
          if in_sort then
            flag ctx loc rule_nan_compare
              (Printf.sprintf
                 "%s with an operand not provably nonzero inside a sort \
                  comparator: a NaN key silently corrupts the order — guard \
                  the operand or precompute a safe key"
                 what)
          else if ctx.hot then begin
            (* A parameter-rescuable operand whose function has known
               call sites is a discharged precondition, not a defect:
               every hot call site proves the argument instead. *)
            let discharged =
              match (rescued guards pos maps den, fw.fw_fq) with
              | Some _, Some fq -> (
                  match lookup_summary ctx fq with
                  | Some s -> s.Summary.s_callers > 0
                  | None -> false)
              | _ -> false
            in
            if not discharged then
              flag ctx loc rule_float_unguarded
                (Printf.sprintf
                   "unguarded %s on a hot path: the operand is not provably \
                    nonzero (guard with an explicit test, or derive it from \
                    a positive source such as Linkset.length)"
                   what)
          end
  in
  let check_preconds guards pos maps ~in_sort e f args =
    (* Call-site discharge: a hot caller must prove every recorded
       precondition of the callee. *)
    if (not in_sort) && ctx.hot && fw.fw_collect = None then
      match Option.bind (resolve_fn ctx.resolver f) (lookup_summary ctx) with
      | Some s when not (List.is_empty s.Summary.s_preconds) ->
          let aligned = align_args s.Summary.s_params args in
          List.iter
            (fun pname ->
              match List.assoc_opt pname aligned with
              | Some arg ->
                  if not (nonzero ctx guards pos maps arg) then
                    flag ctx e.exp_loc rule_float_unguarded
                      (Printf.sprintf
                         "call into %s requires '%s' > 0 (the callee divides \
                          by it) but the argument is not provably nonzero"
                         (short_fq s.Summary.s_fq) pname)
              | None -> ())
            (List.sort_uniq String.compare s.Summary.s_preconds)
      | _ -> ()
  in
  (* Witness refs: [let ok = ref true] with every refutation site
     [if cond then (... ok := false ...)] recorded; once [!ok] is
     tested true, the idents of every refuting condition are known
     positive on that branch. *)
  let witnesses : (string, SSet.t) Hashtbl.t = Hashtbl.create 4 in
  let writes_false id e0 =
    let found = ref false in
    let rec go e =
      (match e.exp_desc with
      | Texp_apply (f, args) when is_stdlib_fn [ ":=" ] f -> (
          match positional_args args with
          | { exp_desc = Texp_ident (Path.Pident w, _, _); _ } :: _
            when String.equal (Ident.unique_name w) id ->
              found := true
          | _ -> ())
      | _ -> ());
      iter_children go e
    in
    go e0;
    !found
  in
  let witness_test e =
    (* [!ok] or [not !ok] over a registered witness. *)
    let deref e =
      match e.exp_desc with
      | Texp_apply (f, args) when is_stdlib_fn [ "!" ] f -> (
          match positional_args args with
          | [ { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ]
            when Hashtbl.mem witnesses (Ident.unique_name id) ->
              Some (Ident.unique_name id)
          | _ -> None)
      | _ -> None
    in
    match e.exp_desc with
    | Texp_apply (f, args) when is_stdlib_fn [ "not" ] f -> (
        match positional_args args with
        | [ inner ] -> Option.map (fun id -> (id, `Negated)) (deref inner)
        | _ -> None)
    | _ -> Option.map (fun id -> (id, `Plain)) (deref e)
  in
  let witness_pos id pos =
    match Hashtbl.find_opt witnesses id with
    | Some ids -> SSet.union pos ids
    | None -> pos
  in
  let pos0 = if fw.fw_collect = None then posarrays ctx e0 else SSet.empty in
  let rec go guards pos maps ~in_sort e =
    with_allows ctx e.exp_attributes @@ fun () ->
    let self = go guards pos maps ~in_sort in
    match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        List.iter (fun vb -> self vb.vb_expr) vbs;
        let pos, maps =
          List.fold_left
            (fun (pos, maps) vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) when nonzero ctx guards pos maps vb.vb_expr ->
                  (SSet.add (Ident.unique_name id) pos, maps)
              | Tpat_var (id, _) when positive_map_partial ctx vb.vb_expr ->
                  (pos, SSet.add (Ident.unique_name id) maps)
              | Tpat_var (id, _)
                when (match vb.vb_expr.exp_desc with
                     | Texp_apply (f, _) -> is_stdlib_fn [ "ref" ] f
                     | _ -> false) ->
                  Hashtbl.replace witnesses (Ident.unique_name id) SSet.empty;
                  (pos, maps)
              | _ -> (pos, maps))
            (pos, maps) vbs
        in
        go guards pos maps ~in_sort body
    | Texp_function { arg_label; param; cases; _ } ->
        let pos =
          let powerish =
            match arg_label with
            | Asttypes.Labelled "power" | Asttypes.Optional "power" -> true
            | _ -> String.equal (Ident.name param) "power"
          in
          if powerish then SSet.add (Ident.unique_name param) pos else pos
        in
        List.iter
          (fun c ->
            let pos =
              match c.c_lhs.pat_desc with
              | Tpat_var (id, _) when String.equal (Ident.name id) "power" ->
                  SSet.add (Ident.unique_name id) pos
              | _ -> pos
            in
            match c.c_guard with
            | Some g ->
                go guards pos maps ~in_sort g;
                go (SSet.union guards (guard_idents g)) pos maps ~in_sort
                  c.c_rhs
            | None -> go guards pos maps ~in_sort c.c_rhs)
          cases
    | Texp_ifthenelse (c, a, b) -> (
        self c;
        (* A refutation site charges the witness; a witness test
           promotes its recorded idents on the surviving branch. *)
        Hashtbl.iter
          (fun id ids ->
            if writes_false id a || (match b with
                                    | Some b -> writes_false id b
                                    | None -> false)
            then
              Hashtbl.replace witnesses id
                (SSet.union ids (guard_idents c)))
          (Hashtbl.copy witnesses);
        match witness_test c with
        | Some (id, `Plain) ->
            go (SSet.union guards (guard_idents c)) (witness_pos id pos) maps
              ~in_sort a;
            Option.iter
              (go (SSet.union guards (guard_idents c)) pos maps ~in_sort)
              b
        | Some (id, `Negated) ->
            go (SSet.union guards (guard_idents c)) pos maps ~in_sort a;
            Option.iter
              (go
                 (SSet.union guards (guard_idents c))
                 (witness_pos id pos) maps ~in_sort)
              b
        | None ->
            let guards = SSet.union guards (guard_idents c) in
            go guards pos maps ~in_sort a;
            Option.iter (go guards pos maps ~in_sort) b)
    | Texp_match (s, cases, _) ->
        self s;
        List.iter
          (fun c ->
            match c.c_guard with
            | Some g ->
                self g;
                go (SSet.union guards (guard_idents g)) pos maps ~in_sort
                  c.c_rhs
            | None -> self c.c_rhs)
          cases
    | Texp_sequence (a, b) ->
        self a;
        let guards =
          match a.exp_desc with
          | Texp_ifthenelse (c, th, None) when always_raises th ->
              SSet.union guards (guard_idents c)
          | Texp_ifthenelse (c, th, Some el)
            when always_raises th || always_raises el ->
              SSet.union guards (guard_idents c)
          | Texp_assert (c, _) -> SSet.union guards (guard_idents c)
          | _ -> guards
        in
        go guards pos maps ~in_sort b
    | Texp_apply (f, args) -> (
        let positional = positional_args args in
        (match (fn_last2 f, positional) with
        | Some (None, "/."), [ _; den ] ->
            check_nonzero guards pos maps ~in_sort "division (/.)" den
              e.exp_loc
        | Some (None, (("log" | "log10" | "sqrt") as fn)), [ arg ]
        | Some (Some "Float", (("log" | "log10" | "sqrt") as fn)), [ arg ] ->
            check_nonzero guards pos maps ~in_sort (fn ^ " application") arg
              e.exp_loc
        | _ -> ());
        check_preconds guards pos maps ~in_sort e f args;
        match (fn_last2 f, positional) with
        | Some (Some m, v), cmp :: rest when List.mem (m, v) sort_fns ->
            go guards pos maps ~in_sort:true cmp;
            List.iter self rest
        | Some (None, ("&&" | "||")), [ a; b ] ->
            (* Short-circuit: the right conjunct only evaluates under
               the left one's test. *)
            self a;
            go (SSet.union guards (guard_idents a)) pos maps ~in_sort b
        | _ ->
            self f;
            List.iter (fun (_, a) -> Option.iter self a) args)
    | Texp_try (body, cases) ->
        self body;
        List.iter
          (fun c ->
            Option.iter self c.c_guard;
            self c.c_rhs)
          cases
    | _ -> iter_children self e
  in
  go SSet.empty pos0 SSet.empty ~in_sort:false e0

(* Extraction: positivity judgment ------------------------------------ *)

(* Three-valued positivity of a function result: [`P] provably
   positive here, [`D deps] positive iff every callee in [deps] is
   (resolved to the exact fact keys [Summary.solve] refutes against),
   [`N] not provable.  Guards use loose polarity — a tested ident is
   assumed positive on both branches; the greatest fixpoint in
   [Summary.solve] is what makes mutual recursion work. *)
let rec pos3 ctx guards e =
  if nonzero ctx guards SSet.empty SSet.empty e then `P
  else
    let comb a b =
      match (a, b) with
      | `N, _ | _, `N -> `N
      | `P, x | x, `P -> x
      | `D s1, `D s2 -> `D (SSet.union s1 s2)
    in
    match e.exp_desc with
    | Texp_let (_, _, b) | Texp_open (_, b) -> pos3 ctx guards b
    | Texp_sequence (a, b) ->
        let guards =
          match a.exp_desc with
          | Texp_ifthenelse (c, th, None) when always_raises th ->
              SSet.union guards (guard_idents c)
          | Texp_assert (c, _) -> SSet.union guards (guard_idents c)
          | _ -> guards
        in
        pos3 ctx guards b
    | Texp_ifthenelse (c, a, b) -> (
        match b with
        | None -> `N
        | Some b ->
            let g = SSet.union guards (guard_idents c) in
            let branches =
              List.filter (fun br -> not (always_raises br)) [ a; b ]
            in
            List.fold_left (fun acc br -> comb acc (pos3 ctx g br)) `P branches)
    | Texp_match (_, cases, _) ->
        List.fold_left
          (fun acc c ->
            if always_raises c.c_rhs then acc
            else
              let g =
                match c.c_guard with
                | Some gd -> SSet.union guards (guard_idents gd)
                | None -> guards
              in
              comb acc (pos3 ctx g c.c_rhs))
          `P cases
    | Texp_apply (f, args) -> (
        let positional = positional_args args in
        match (fn_last2 f, positional) with
        | Some (None, ("*." | "+." | "/.")), [ a; b ] ->
            comb (pos3 ctx guards a) (pos3 ctx guards b)
        | Some (None, "**"), [ base; _ ] -> pos3 ctx guards base
        | Some (Some "Float", "abs"), [ a ] -> pos3 ctx guards a
        | _ ->
            if is_float_type e.exp_type then
              match resolve_fn ctx.resolver f with
              | Some callee -> `D (SSet.singleton callee)
              | None -> `N
            else `N)
    | _ -> `N

(* Extraction: allocation model --------------------------------------- *)

let noalloc_bare =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "+"; "-"; "*"; "/"; "mod"; "land";
    "lor"; "lxor"; "lsl"; "lsr"; "asr"; "abs"; "abs_float"; "sqrt"; "log";
    "log10"; "log1p"; "exp"; "expm1"; "floor"; "ceil"; "not"; "&&"; "||";
    "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare"; "min"; "max";
    "ignore"; "fst"; "snd"; "float_of_int"; "int_of_float"; "truncate";
    "succ"; "pred"; "!"; ":="; "incr"; "decr";
  ]

let noalloc_qualified =
  [
    ( "Float",
      [
        "min"; "max"; "abs"; "equal"; "compare"; "is_nan"; "is_finite";
        "is_integer"; "round"; "trunc"; "floor"; "ceil"; "hypot"; "of_int";
        "to_int"; "pow"; "sqrt"; "log"; "log2"; "log10"; "log1p"; "exp";
        "expm1"; "add"; "sub"; "mul"; "div"; "rem"; "neg"; "fma"; "succ";
        "pred"; "copy_sign"; "sign_bit";
      ] );
    ("Array", [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length" ]);
    ("Bytes", [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length" ]);
    ( "Int",
      [
        "min"; "max"; "abs"; "equal"; "compare"; "succ"; "pred"; "add";
        "sub"; "mul"; "div"; "rem"; "neg"; "shift_left"; "shift_right";
        "logand"; "logor"; "logxor"; "lognot"; "to_float"; "of_float";
      ] );
    ("Bool", [ "not"; "equal"; "compare" ]);
    ( "Atomic",
      [
        "get"; "set"; "exchange"; "compare_and_set"; "fetch_and_add";
        "incr"; "decr";
      ] );
  ]

let is_noalloc = function
  | None, v -> List.mem v noalloc_bare
  | Some m, v -> (
      match List.assoc_opt m noalloc_qualified with
      | Some vs -> List.mem v vs
      | None -> false)

(* Like [resolve_fn] but keeps single-component Stdlib names
   ("string_of_int"): extraction records them so [hot-alloc] can
   reject calls with unknown allocation behavior. *)
let resolve_callee r e =
  match fn_path e with
  | Some (Path.Pident id) -> Hashtbl.find_opt r.r_values (Ident.unique_name id)
  | Some p -> (
      match resolve_parts r (path_parts p) with
      | [] -> None
      | parts -> Some (String.concat "." parts))
  | None -> None

(* Let-bound refs used only through [!], [:=], [incr], [decr]: local
   accumulators the backend keeps well-behaved (float contents may
   still box — documented model limitation), so [hot-alloc] admits
   them. *)
let benign_refs e0 =
  let cands = Hashtbl.create 4 in
  let rec collect e =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var (id, _), Texp_apply (f, _)
              when is_stdlib_fn [ "ref" ] f ->
                Hashtbl.replace cands (Ident.unique_name id) true
            | _ -> ())
          vbs
    | _ -> ());
    iter_children collect e
  in
  collect e0;
  let rec scan e =
    match e.exp_desc with
    | Texp_apply (f, args) when is_stdlib_fn [ "!"; ":="; "incr"; "decr" ] f
      -> (
        match positional_args args with
        | { exp_desc = Texp_ident (Path.Pident _, _, _); _ } :: rest ->
            List.iter scan rest
        | ps -> List.iter scan ps)
    | Texp_ident (Path.Pident id, _, _)
      when Hashtbl.mem cands (Ident.unique_name id) ->
        Hashtbl.replace cands (Ident.unique_name id) false
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var _, Texp_apply (f, args) when is_stdlib_fn [ "ref" ] f
              ->
                List.iter (fun (_, a) -> Option.iter scan a) args
            | _ -> scan vb.vb_expr)
          vbs;
        scan body
    | _ -> iter_children scan e
  in
  scan e0;
  Hashtbl.fold (fun n ok acc -> if ok then SSet.add n acc else acc) cands
    SSet.empty

(* Extraction: record-field bounds ------------------------------------ *)

(* [if id <= c then <raise>] proves [id > c] afterwards. *)
let guard_bound cond =
  match cond.exp_desc with
  | Texp_apply (f, args) -> (
      match (fn_last2 f, positional_args args) with
      | ( Some (None, (("<=" | "<") as op)),
          [ { exp_desc = Texp_ident (Path.Pident id, _, _); _ }; b ] ) -> (
          match float_const_value b with
          | Some c when Float.is_finite c ->
              Some
                ( Ident.unique_name id,
                  { Summary.lb = c; strict = String.equal op "<=" } )
          | None | Some _ -> None)
      | _ -> None)
  | _ -> None

let expr_bound bmap fe =
  match fe.exp_desc with
  | Texp_constant (Asttypes.Const_float s) -> (
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> Some { Summary.lb = v; strict = false }
      | _ -> None)
  | Texp_ident (Path.Pident id, _, _) ->
      List.assoc_opt (Ident.unique_name id) bmap
  | Texp_apply (f, args) -> (
      match (fn_last2 f, positional_args args) with
      | Some (None, "**"), [ base; _ ] -> (
          match float_const_value base with
          | Some c when c > 0.0 -> Some { Summary.lb = 0.0; strict = true }
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Record every float field of every record construction site, with
   the strongest bound the guard sequence in scope proves.  A site
   with no provable bound records [None] — which absorbs in
   [Summary.meet_bound], correctly killing the whole-program
   invariant. *)
let rec field_scan ctx bmap acc e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun c ->
          Option.iter (field_scan ctx bmap acc) c.c_guard;
          field_scan ctx bmap acc c.c_rhs)
        cases
  | Texp_let (_, vbs, body) ->
      List.iter (fun vb -> field_scan ctx bmap acc vb.vb_expr) vbs;
      let bmap =
        List.fold_left
          (fun bmap vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) -> (
                match expr_bound bmap vb.vb_expr with
                | Some b -> (Ident.unique_name id, b) :: bmap
                | None -> bmap)
            | _ -> bmap)
          bmap vbs
      in
      field_scan ctx bmap acc body
  | Texp_sequence (a, b) ->
      field_scan ctx bmap acc a;
      let bmap =
        match a.exp_desc with
        | Texp_ifthenelse (cond, th, None) when always_raises th -> (
            match guard_bound cond with
            | Some (u, bnd) -> (u, bnd) :: bmap
            | None -> bmap)
        | _ -> bmap
      in
      field_scan ctx bmap acc b
  | Texp_record { fields; extended_expression; _ } ->
      Option.iter (field_scan ctx bmap acc) extended_expression;
      (match type_fq ctx.resolver e.exp_type with
      | Some tfq ->
          Array.iter
            (fun (lbl, def) ->
              match def with
              | Overridden (_, fe) ->
                  if is_float_type lbl.Types.lbl_arg then
                    acc :=
                      {
                        Summary.r_type = tfq;
                        r_field = lbl.Types.lbl_name;
                        r_bound = expr_bound bmap fe;
                      }
                      :: !acc;
                  field_scan ctx bmap acc fe
              | Kept _ -> ())
            fields
      | None ->
          Array.iter
            (fun (_, def) ->
              match def with
              | Overridden (_, fe) -> field_scan ctx bmap acc fe
              | Kept _ -> ())
            fields)
  | _ -> iter_children (field_scan ctx bmap acc) e

(* Extraction: one toplevel binding -> one fact ----------------------- *)

let extract_binding ctx env vb fq =
  let params, body = peel_params vb.vb_expr in
  let param_uniques = List.map (fun (u, _, _) -> u) params in
  let param_index u = List.find_index (String.equal u) param_uniques in
  let locals = bound_idents vb.vb_expr in
  let benign = benign_refs vb.vb_expr in
  let calls = ref [] in
  let raises = ref [] in
  let gwrites = ref [] in
  let pwrites = ref [] in
  let alloc = ref None in
  let bind_line = vb.vb_pat.pat_loc.Location.loc_start.Lexing.pos_lnum in
  let block =
    ref
      (if has_attr "wa.compute" vb.vb_attributes then
         Some
           (Printf.sprintf "[@wa.compute] unbounded compute (%s:%d)" ctx.src
              bind_line)
       else None)
  in
  let locks_acq = ref [] in
  let lock_edges = ref [] in
  let requires = ref [] in
  let guarded = ref 0 in
  (* Register lock-wrapper shapes before any later binding calls
     them: [extract_structure] processes bindings in source order. *)
  (match wrapper_shape params body with
  | Some ij -> Hashtbl.replace ctx.wrappers fq ij
  | None -> ());
  let record_acquire ~held ~deferred l line =
    match l with
    | None -> ()
    | Some l ->
        if (not deferred) && not (List.mem l !locks_acq) then
          locks_acq := l :: !locks_acq;
        List.iter
          (fun h ->
            if not (String.equal h l) then
              lock_edges := (h, l, line) :: !lock_edges)
          held
  in
  let check_access ~allows ~held key line =
    match key with
    | None -> ()
    | Some key ->
        if Hashtbl.mem ctx.guards.g_benign key then ()
        else (
          match Hashtbl.find_opt ctx.guards.g_locks key with
          | None -> ()
          | Some lock ->
              if List.mem lock held then incr guarded
              else if
                not
                  (List.mem rule_lockset allows
                  || List.mem rule_lockset ctx.file_allows)
              then
                requires :=
                  ( lock,
                    Printf.sprintf "%s touched without %s (%s:%d)" key lock
                      ctx.src line )
                  :: !requires)
  in
  (* A write already synchronized (guard held) or declared an
     intentional race is not a cross-domain write footprint. *)
  let write_synced ~held key =
    match key with
    | None -> false
    | Some k -> (
        Hashtbl.mem ctx.guards.g_benign k
        ||
        match Hashtbl.find_opt ctx.guards.g_locks k with
        | Some lock -> List.mem lock held
        | None -> false)
  in
  let target_key t =
    match t.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> global_key ctx id
    | Texp_field (r, _, lbl) -> field_key ctx r lbl
    | _ -> None
  in
  let closure_captures e =
    let inner = bound_idents e in
    List.exists
      (fun u ->
        (not (Hashtbl.mem inner u))
        && Hashtbl.mem locals u
        && not (Hashtbl.mem ctx.resolver.r_values u))
      (idents_in e)
  in
  let record_write ~allows target =
    if
      not
        (List.mem rule_domain_capture allows
        || List.mem rule_domain_capture ctx.file_allows)
    then
      match head_ident target with
      | Some (root, id) when not (is_atomic_type root.exp_type) -> (
          let u = Ident.unique_name id in
          match param_index u with
          | Some i -> pwrites := i :: !pwrites
          | None ->
              if not (Hashtbl.mem locals u) then
                gwrites := Ident.name id :: !gwrites)
      | _ -> ()
  in
  let rec walk ~caught ~cold ~allows ~held ~deferred e =
    let allows = allows_of_attrs e.exp_attributes @ allows in
    let go = walk ~caught ~cold ~allows ~held ~deferred in
    let go_cold = walk ~caught ~cold:true ~allows ~held ~deferred in
    let line = e.exp_loc.Location.loc_start.Lexing.pos_lnum in
    let note what =
      if (not cold) && !alloc = None then
        alloc := Some (Printf.sprintf "%s (%s:%d)" what ctx.src line)
    in
    (* Lock delta of a statement position: [Mutex.lock m] holds [m]
       for the rest of the enclosing sequence (or let body),
       [Mutex.unlock m] releases it. *)
    let apply_delta held st =
      match st.exp_desc with
      | Texp_apply (f, args) -> (
          match (fn_last2 f, positional_args args) with
          | Some (Some "Mutex", "lock"), [ m ] -> (
              match lock_name ctx m with
              | Some l ->
                  l :: List.filter (fun x -> not (String.equal x l)) held
              | None -> held)
          | Some (Some "Mutex", "unlock"), [ m ] -> (
              match lock_name ctx m with
              | Some l -> List.filter (fun x -> not (String.equal x l)) held
              | None -> held)
          | _ -> held)
      | _ -> held
    in
    match e.exp_desc with
    | Texp_sequence (a, b) ->
        go a;
        walk ~caught ~cold ~allows ~held:(apply_delta held a) ~deferred b
    | Texp_field (r, _, lbl) ->
        check_access ~allows ~held (field_key ctx r lbl) line;
        go r
    | Texp_ident (Path.Pident id, _, _) ->
        (match global_key ctx id with
        | Some k
          when Hashtbl.mem ctx.guards.g_locks k
               || Hashtbl.mem ctx.guards.g_benign k ->
            check_access ~allows ~held (Some k) line
        | _ -> ())
    | Texp_tuple es ->
        note "allocates a tuple";
        List.iter go es
    | Texp_array es ->
        note "allocates an array literal";
        List.iter go es
    | Texp_record { fields; extended_expression; _ } ->
        note "allocates a record";
        Option.iter go extended_expression;
        Array.iter
          (fun (_, def) ->
            match def with Overridden (_, fe) -> go fe | Kept _ -> ())
          fields
    | Texp_construct (_, cd, args) ->
        if not (List.is_empty args) then
          note (Printf.sprintf "allocates constructor %s" cd.Types.cstr_name);
        List.iter go args
    | Texp_variant (_, arg) ->
        Option.iter
          (fun a ->
            note "allocates a variant";
            go a)
          arg
    | Texp_lazy e' ->
        note "allocates a lazy value";
        go e'
    | Texp_function _ ->
        if closure_captures e then note "allocates a capturing closure";
        iter_children go e
    | Texp_setfield (obj, _, lbl, rhs) ->
        let key = field_key ctx obj lbl in
        check_access ~allows ~held key line;
        if not (write_synced ~held key) then record_write ~allows obj;
        go obj;
        go rhs
    | Texp_try (body, cases) ->
        walk ~caught:(caught_of_cases cases @ caught) ~cold ~allows ~held
          ~deferred body;
        List.iter
          (fun c ->
            Option.iter go c.c_guard;
            go c.c_rhs)
          cases
    | Texp_assert (cond, _) -> go_cold cond
    | Texp_ifthenelse (c, a, b) ->
        go c;
        (if always_raises a then go_cold a else go a);
        Option.iter (fun b -> if always_raises b then go_cold b else go b) b
    | Texp_match (scrut, cases, _) ->
        go scrut;
        List.iter
          (fun c ->
            Option.iter go c.c_guard;
            if always_raises c.c_rhs then go_cold c.c_rhs else go c.c_rhs)
          cases
    | Texp_let (_, vbs, bd) ->
        List.iter
          (fun vb' ->
            match (vb'.vb_pat.pat_desc, vb'.vb_expr.exp_desc) with
            | Tpat_var (id, _), Texp_apply (f, args)
              when is_stdlib_fn [ "ref" ] f
                   && SSet.mem (Ident.unique_name id) benign ->
                (* Non-escaping accumulator ref: admitted. *)
                List.iter (fun (_, a) -> Option.iter go a) args
            | _ -> go vb'.vb_expr)
          vbs;
        let held' =
          List.fold_left (fun h vb' -> apply_delta h vb'.vb_expr) held vbs
        in
        walk ~caught ~cold ~allows ~held:held' ~deferred bd
    | Texp_apply (f, args) -> (
        let positional = positional_args args in
        let record_call callee =
          let c_args =
            List.mapi (fun j a -> (j, a)) positional
            |> List.filter_map (fun (j, a) ->
                   match a.exp_desc with
                   | Texp_ident (Path.Pident id, _, _) ->
                       Option.map
                         (fun i -> (j, i))
                         (param_index (Ident.unique_name id))
                   | _ -> None)
          in
          calls :=
            {
              Summary.c_callee = callee;
              c_args;
              c_caught = caught;
              c_held = List.sort_uniq String.compare held;
              c_deferred = deferred;
            }
            :: !calls
        in
        (* Blocking primitives: deferred closures run on another
           domain and cannot block this function. *)
        (match blocking_prim f with
        | Some reason when (not deferred) && !block = None ->
            block := Some (Printf.sprintf "%s (%s:%d)" reason ctx.src line)
        | _ -> ());
        (match (fn_last2 f, positional) with
        | Some (Some "Mutex", "lock"), [ m ] ->
            record_acquire ~held ~deferred (lock_name ctx m) line
        | Some (None, ":="), lhs :: _ ->
            if not (write_synced ~held (target_key lhs)) then
              record_write ~allows lhs
        | Some (None, ("incr" | "decr")), r :: _ ->
            if not (write_synced ~held (target_key r)) then
              record_write ~allows r
        | Some (Some m, v), first :: _ when List.mem (m, v) array_set_fns ->
            if not (write_synced ~held (target_key first)) then
              record_write ~allows first
        | Some (Some m, v), first :: _ when List.mem (m, v) container_mut_fns
          ->
            if not (write_synced ~held (target_key first)) then
              record_write ~allows first
        | _ -> ());
        (* Scoped acquisitions: [Mutex.protect m thunk] and in-unit
           lock wrappers run their thunk with the lock held. *)
        let scoped =
          match (fn_last2 f, positional) with
          | Some (Some "Mutex", "protect"), m :: rest -> Some (m, rest)
          | _ -> (
              match resolve_callee ctx.resolver f with
              | Some callee -> (
                  match Hashtbl.find_opt ctx.wrappers callee with
                  | Some (i, j) -> (
                      match
                        (List.nth_opt positional i, List.nth_opt positional j)
                      with
                      | Some m, Some th -> Some (m, [ th ])
                      | _ -> None)
                  | None -> None)
              | None -> None)
        in
        match scoped with
        | Some (m, thunks) ->
            let l = lock_name ctx m in
            record_acquire ~held ~deferred l line;
            let held' =
              match l with
              | Some l when not (List.mem l held) -> l :: held
              | _ -> held
            in
            List.iter
              (fun (_, a) ->
                Option.iter
                  (fun a ->
                    if List.memq a thunks then
                      walk ~caught ~cold ~allows ~held:held' ~deferred a
                    else go a)
                  a)
              args;
            if not cold then
              Option.iter record_call (resolve_callee ctx.resolver f)
        | None -> (
            match (fn_last2 f, positional) with
            | Some (None, ("raise" | "raise_notrace")), arg :: _ ->
                let name =
                  match arg.exp_desc with
                  | Texp_construct (_, cd, _) -> cd.Types.cstr_name
                  | _ -> "exn"
                in
                if not (List.mem "*" caught || List.mem name caught) then
                  raises := name :: !raises;
                List.iter go_cold positional
            | Some (None, v), _ when List.mem v raise_like ->
                (* failwith / invalid_arg: excluded from the may-raise
                   summary by policy (ubiquitous precondition guards);
                   their argument construction is cold. *)
                List.iter go_cold positional
            | key, _ ->
                (match f.exp_desc with Texp_apply _ -> go f | _ -> ());
                if is_arrow_type e.exp_type then
                  note
                    "allocates a partial application (the result is a \
                     closure)";
                (match key with
                | Some k when is_noalloc k -> ()
                | _ -> (
                    if not cold then
                      match resolve_callee ctx.resolver f with
                      | Some callee -> record_call callee
                      | None -> ()));
                let spawn = spawn_like_fn f in
                List.iter
                  (fun (_, a) ->
                    Option.iter
                      (fun a ->
                        if spawn && is_arrow_type a.exp_type then
                          walk ~caught ~cold ~allows ~held:[] ~deferred:true a
                        else go a)
                      a)
                  args))
    | _ -> iter_children go e
  in
  walk ~caught:[] ~cold:false ~allows:[] ~held:[] ~deferred:false body;
  let f_pos, f_pos_deps =
    match pos3 ctx SSet.empty body with
    | `P -> (true, None)
    | `D deps -> (false, Some (SSet.elements deps))
    | `N -> (false, None)
  in
  let preconds = ref [] in
  float_walk ctx
    { fw_fq = Some fq; fw_params = params; fw_collect = Some preconds }
    vb.vb_expr;
  let d = infer ctx env body in
  let loc = vb.vb_pat.pat_loc.Location.loc_start in
  let fact =
    {
      Summary.f_fq = fq;
      f_params = List.map (fun (_, disp, _) -> disp) params;
      f_line = loc.Lexing.pos_lnum;
      f_col = loc.Lexing.pos_cnum - loc.Lexing.pos_bol;
      f_hot = is_wa_hot vb.vb_attributes;
      f_alloc = !alloc;
      f_raises =
        (if ctx.capture_ok then []
         else List.sort_uniq String.compare !raises);
      f_global_writes =
        (if ctx.capture_ok then []
         else List.sort_uniq String.compare !gwrites);
      f_param_writes =
        (if ctx.capture_ok then [] else List.sort_uniq Int.compare !pwrites);
      f_pos;
      f_pos_deps;
      f_preconds = List.sort_uniq String.compare !preconds;
      f_dom = dom_name d;
      f_calls = List.rev !calls;
      f_event_loop = has_attr "wa.event_loop" vb.vb_attributes;
      f_block = !block;
      f_locks = List.sort_uniq String.compare !locks_acq;
      f_lock_edges =
        List.sort_uniq
          (fun (h, l, i) (h', l', i') ->
            match String.compare h h' with
            | 0 -> (
                match String.compare l l' with
                | 0 -> Int.compare i i'
                | n -> n)
            | n -> n)
          !lock_edges;
      f_requires =
        (* one witness per missing lock, deterministic choice *)
        (List.sort_uniq
           (fun (a, wa) (b, wb) ->
             match String.compare a b with
             | 0 -> String.compare wa wb
             | n -> n)
           !requires
        |> List.fold_left
             (fun acc (l, w) ->
               if List.mem_assoc l acc then acc else (l, w) :: acc)
             []
        |> List.rev);
      f_guarded = !guarded;
    }
  in
  (fact, d)

let extract_structure ctx str =
  let env = Hashtbl.create 64 in
  let fns = ref [] in
  let fields = ref [] in
  let rec do_items items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                field_scan ctx [] fields vb.vb_expr;
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) -> (
                    match
                      Hashtbl.find_opt ctx.resolver.r_values
                        (Ident.unique_name id)
                    with
                    | Some fq ->
                        let fact, d = extract_binding ctx env vb fq in
                        fns := fact :: !fns;
                        if List.is_empty fact.Summary.f_params then
                          Hashtbl.replace env (Ident.unique_name id) d
                    | None -> ())
                | _ -> ())
              vbs
        | Tstr_eval (e, _) ->
            field_scan ctx [] fields e;
            ignore (infer ctx env e)
        | Tstr_module mb -> do_module_expr mb.mb_expr
        | Tstr_recmodule mbs ->
            List.iter (fun mb -> do_module_expr mb.mb_expr) mbs
        | Tstr_include incl -> do_module_expr incl.incl_mod
        | _ -> ())
      items
  and do_module_expr me =
    match me.mod_desc with
    | Tmod_structure s -> do_items s.str_items
    | Tmod_constraint (me, _, _, _) -> do_module_expr me
    | Tmod_functor (_, me) -> do_module_expr me
    | _ -> ()
  in
  do_items str.str_items;
  (List.rev !fns, List.rev !fields)

(* Pass 6: hot-alloc certification ------------------------------------ *)

let diagnose_hot_alloc ctx =
  match ctx.summaries with
  | None -> ()
  | Some s ->
      let owned fq =
        match Hashtbl.find_opt s.srcs fq with
        | Some src -> String.equal src ctx.src
        | None -> false
      in
      Hashtbl.iter
        (fun fq (f : Summary.fn_fact) ->
          if f.Summary.f_hot && owned fq then begin
            (match Summary.find s.tbl fq with
            | Some sum -> (
                match sum.Summary.s_alloc with
                | Some chain ->
                    flag_at ctx ~line:f.Summary.f_line ~col:f.Summary.f_col
                      rule_hot_alloc
                      (Printf.sprintf "[@wa.hot] %s may allocate: %s"
                         (short_fq fq) chain)
                | None -> ())
            | None -> ());
            (* Any call chain reaching a function without a summary
               leaves the certificate open: reject it. *)
            let visited = Hashtbl.create 16 in
            let flagged = Hashtbl.create 4 in
            let rec dfs chain (g : Summary.fn_fact) =
              if not (Hashtbl.mem visited g.Summary.f_fq) then begin
                Hashtbl.add visited g.Summary.f_fq ();
                List.iter
                  (fun (c : Summary.call) ->
                    match Summary.lookup s.tbl c.Summary.c_callee with
                    | Some sum -> (
                        match Hashtbl.find_opt s.facts sum.Summary.s_fq with
                        | Some g' ->
                            dfs (chain @ [ short_fq c.Summary.c_callee ]) g'
                        | None -> ())
                    | None ->
                        if not (Hashtbl.mem flagged c.Summary.c_callee) then begin
                          Hashtbl.add flagged c.Summary.c_callee ();
                          flag_at ctx ~line:f.Summary.f_line
                            ~col:f.Summary.f_col rule_hot_alloc
                            (Printf.sprintf
                               "[@wa.hot] %s calls %s (via %s), which has no \
                                summary: allocation behavior unknown — \
                                inline it, extend the analyzer's no-alloc \
                                table, or drop the annotation"
                               (short_fq fq) c.Summary.c_callee
                               (String.concat " -> "
                                  (chain @ [ c.Summary.c_callee ])))
                        end)
                  g.Summary.f_calls
              end
            in
            dfs [ short_fq fq ] f
          end)
        s.facts

(* Passes 7–9: lockset, lock-order, event-loop certification ---------- *)

let diagnose_concurrency ctx =
  match ctx.summaries with
  | None -> ()
  | Some s ->
      let owned fq =
        match Hashtbl.find_opt s.srcs fq with
        | Some src -> String.equal src ctx.src
        | None -> false
      in
      (* Lock-order cycles are global facts; attribute each conflicting
         edge to the unit that owns its outer acquisition so per-file
         reports stay cacheable. *)
      List.iter
        (fun (owner, line, msg) ->
          if owned owner then
            flag_at ctx ~line ~col:0 rule_lock_order msg)
        s.lock_cycles;
      Hashtbl.iter
        (fun fq (f : Summary.fn_fact) ->
          if owned fq then begin
            ctx.guarded <- ctx.guarded + f.Summary.f_guarded;
            match Summary.find s.tbl fq with
            | None -> ()
            | Some sum ->
                (* A lock requirement that survives to a function no
                   call site discharges is a real race: nothing in the
                   program ever holds the guard across this path. *)
                if sum.Summary.s_callers = 0 then
                  List.iter
                    (fun (lock, witness) ->
                      flag_at ctx ~line:f.Summary.f_line ~col:f.Summary.f_col
                        rule_lockset
                        (Printf.sprintf
                           "%s touches state guarded by %s without holding \
                            it (no call site provides the lock): %s — take \
                            the lock around the access, or declare the race \
                            intentional with [@wa.benign_race]"
                           (short_fq fq) lock witness))
                    sum.Summary.s_requires;
                if f.Summary.f_event_loop then (
                  match sum.Summary.s_block with
                  | Some chain ->
                      flag_at ctx ~line:f.Summary.f_line ~col:f.Summary.f_col
                        rule_event_loop
                        (Printf.sprintf
                           "[@wa.event_loop] %s can block the select loop: \
                            %s — push the work onto the pool, make the fd \
                            non-blocking, or drop the annotation"
                           (short_fq fq) chain)
                  | None -> ctx.roots <- ctx.roots + 1)
          end)
        s.facts

(* Per-structure drivers ---------------------------------------------- *)

let file_allows_of_structure str =
  List.concat_map
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a when String.equal a.attr_name.txt "wa.check.allow"
        ->
          allows_of_payload a.attr_payload
      | _ -> [])
    str.str_items

let analyze_structure ctx str =
  let fns = collect_fn_bindings str in
  let env = Hashtbl.create 64 in
  let rec do_items items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                with_allows ctx vb.vb_attributes @@ fun () ->
                if not ctx.capture_ok then scan_parallel ctx fns vb.vb_expr;
                scan_check_then_act ctx vb.vb_expr;
                let fw_fq =
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) ->
                      Hashtbl.find_opt ctx.resolver.r_values
                        (Ident.unique_name id)
                  | _ -> None
                in
                let fw_params, _ = peel_params vb.vb_expr in
                float_walk ctx
                  { fw_fq; fw_params; fw_collect = None }
                  vb.vb_expr;
                let d = infer ctx env vb.vb_expr in
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) ->
                    Hashtbl.replace env (Ident.unique_name id) d
                | _ -> ())
              vbs
        | Tstr_eval (e, attrs) ->
            with_allows ctx attrs @@ fun () ->
            if not ctx.capture_ok then scan_parallel ctx fns e;
            scan_check_then_act ctx e;
            float_walk ctx
              { fw_fq = None; fw_params = []; fw_collect = None }
              e;
            ignore (infer ctx env e)
        | Tstr_module mb -> do_module_expr mb.mb_expr
        | Tstr_recmodule mbs ->
            List.iter (fun mb -> do_module_expr mb.mb_expr) mbs
        | Tstr_include incl -> do_module_expr incl.incl_mod
        | _ -> ())
      items
  and do_module_expr me =
    match me.mod_desc with
    | Tmod_structure s -> do_items s.str_items
    | Tmod_constraint (me, _, _, _) -> do_module_expr me
    | Tmod_functor (_, me) -> do_module_expr me
    | _ -> ()
  in
  do_items str.str_items;
  diagnose_hot_alloc ctx;
  diagnose_concurrency ctx

(* Cmt drivers -------------------------------------------------------- *)

let is_generated src =
  Filename.check_suffix src "-gen" || Filename.check_suffix src ".ml-gen"

type loaded =
  | L_err of file_report
  | L_skip
  | L_impl of string * string list * structure
      (* source path, unit parts (["Wa_sinr"; "Linkset"]), typedtree *)

let load_unit path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      L_err
        {
          skipped with
          source = Some (normalize_path path);
          file_violations =
            [
              {
                file = normalize_path path;
                line = 1;
                col = 0;
                rule = rule_cmt_error;
                message =
                  Printf.sprintf "cannot read cmt: %s"
                    (Printexc.to_string exn);
              };
            ];
        }
  | infos -> (
      match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile)
      with
      | Cmt_format.Implementation str, Some src when not (is_generated src)
        ->
          L_impl
            ( normalize_path src,
              split_wrapped infos.Cmt_format.cmt_modname,
              str )
      | _ -> L_skip)

let make_ctx ~config ~quiet ~src ~unit_parts ~summaries str =
  {
    cfg = config;
    src;
    self_module =
      String.capitalize_ascii
        (Filename.remove_extension (Filename.basename src));
    hot = path_matches ~prefixes:config.Config.hot_paths src;
    capture_ok = path_matches ~prefixes:config.Config.capture_allowed src;
    quiet;
    resolver = build_resolver unit_parts str;
    summaries;
    guards = collect_guards unit_parts str;
    wrappers = Hashtbl.create 8;
    file_allows = file_allows_of_structure str;
    allow_stack = [];
    found = [];
    closures = 0;
    exprs = 0;
    guarded = 0;
    roots = 0;
  }

let extract_unit ~config path digest loaded =
  match loaded with
  | L_impl (src, unit_parts, str) ->
      let ctx =
        make_ctx ~config ~quiet:true ~src ~unit_parts ~summaries:None str
      in
      let fns, fields = extract_structure ctx str in
      {
        Summary.u_path = normalize_path path;
        u_src = src;
        u_digest = digest;
        u_fns = fns;
        u_fields = fields;
      }
  | L_err _ | L_skip ->
      {
        Summary.u_path = normalize_path path;
        u_src = "";
        u_digest = digest;
        u_fns = [];
        u_fields = [];
      }

let diagnose_unit ~config ~summaries loaded =
  match loaded with
  | L_err r -> r
  | L_skip -> skipped
  | L_impl (src, unit_parts, str) ->
      let ctx = make_ctx ~config ~quiet:false ~src ~unit_parts ~summaries str in
      analyze_structure ctx str;
      {
        source = Some src;
        analyzed = true;
        file_violations = List.sort compare_violation ctx.found;
        file_closures = ctx.closures;
        file_expressions = ctx.exprs;
        file_guarded = ctx.guarded;
        file_roots = ctx.roots;
      }

let analyze_cmt ?(config = Config.default) ?summaries path =
  diagnose_unit ~config ~summaries (load_unit path)

let summaries_of_units units =
  let tbl = Summary.solve units in
  let facts = Hashtbl.create 256 in
  let srcs = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter
        (fun (f : Summary.fn_fact) ->
          Hashtbl.replace facts f.Summary.f_fq f;
          Hashtbl.replace srcs f.Summary.f_fq u.Summary.u_src)
        u.Summary.u_fns)
    units;
  (* Lock-order graph: an edge h -> l for every site acquiring [l]
     while [h] is held — directly ([f_lock_edges]) or through a call
     into a function whose summary says it acquires [l]. One
     representative witness per edge, chosen deterministically. *)
  let edges = Hashtbl.create 16 in
  let add_edge h l owner line desc =
    if not (String.equal h l) then
      match Hashtbl.find_opt edges (h, l) with
      | Some (_, _, d) when String.compare d desc <= 0 -> ()
      | _ -> Hashtbl.replace edges (h, l) (owner, line, desc)
  in
  Hashtbl.iter
    (fun fq (f : Summary.fn_fact) ->
      let src = Option.value ~default:"?" (Hashtbl.find_opt srcs fq) in
      List.iter
        (fun (h, l, line) ->
          add_edge h l fq line
            (Printf.sprintf "%s -> %s at %s (%s:%d)" h l (short_fq fq) src
               line))
        f.Summary.f_lock_edges;
      List.iter
        (fun (c : Summary.call) ->
          if (not c.Summary.c_deferred) && not (List.is_empty c.Summary.c_held)
          then
            match Summary.lookup tbl c.Summary.c_callee with
            | Some sum ->
                List.iter
                  (fun (l, via) ->
                    let chain =
                      if String.equal via "" then short_fq c.Summary.c_callee
                      else short_fq c.Summary.c_callee ^ " -> " ^ via
                    in
                    List.iter
                      (fun h ->
                        add_edge h l fq f.Summary.f_line
                          (Printf.sprintf "%s -> %s at %s (%s:%d) via %s" h
                             l (short_fq fq) src f.Summary.f_line chain))
                      c.Summary.c_held)
                  sum.Summary.s_locks
            | None -> ())
        f.Summary.f_calls)
    facts;
  let nodes =
    Hashtbl.fold (fun (h, l) _ acc -> h :: l :: acc) edges []
    |> List.sort_uniq String.compare
  in
  let succ n =
    Hashtbl.fold
      (fun (h, l) _ acc -> if String.equal h n then l :: acc else acc)
      edges []
    |> List.sort String.compare
  in
  let lock_cycles =
    Summary.sccs nodes succ
    |> List.concat_map (fun comp ->
           if List.length comp < 2 then []
           else
             let in_comp =
               Hashtbl.fold
                 (fun (h, l) w acc ->
                   if List.mem h comp && List.mem l comp then (w, (h, l)) :: acc
                   else acc)
                 edges []
               |> List.sort (fun ((_, _, d), _) ((_, _, d'), _) ->
                      String.compare d d')
             in
             List.map
               (fun ((owner, line, desc), _) ->
                 let others =
                   List.filter_map
                     (fun ((_, _, d), _) ->
                       if String.equal d desc then None else Some d)
                     in_comp
                 in
                 let others =
                   List.filteri (fun i _ -> i < 3) others
                   |> String.concat "; "
                 in
                 ( owner,
                   line,
                   Printf.sprintf
                     "lock-order cycle: %s conflicts with %s — a thread in \
                      each chain deadlocks; impose a global acquisition \
                      order"
                     desc others ))
               in_comp)
    |> List.sort (fun (o, i, m) (o', i', m') ->
           match String.compare o o' with
           | 0 -> (
               match Int.compare i i' with
               | 0 -> String.compare m m'
               | n -> n)
           | n -> n)
  in
  { tbl; facts; srcs; lock_cycles }

(* Directory driver: collect .cmt files, descending into dune's hidden
   .objs directories (unlike source scanners, dotted dirs are the
   point here). *)
let rec collect_cmt acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = ".git" || entry = "node_modules" then acc
           else collect_cmt acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let summarize_paths ?(config = Config.default) paths =
  let files =
    List.fold_left collect_cmt [] paths |> List.sort_uniq String.compare
  in
  summaries_of_units
    (List.map
       (fun p -> extract_unit ~config p (Summary.digest_file p) (load_unit p))
       files)

let aggregate reports =
  let analyzed = List.filter (fun r -> r.analyzed) reports in
  {
    files_scanned = List.length analyzed;
    closures_analyzed =
      List.fold_left (fun a r -> a + r.file_closures) 0 analyzed;
    expressions_analyzed =
      List.fold_left (fun a r -> a + r.file_expressions) 0 analyzed;
    guarded_accesses =
      List.fold_left (fun a r -> a + r.file_guarded) 0 analyzed;
    event_loop_roots = List.fold_left (fun a r -> a + r.file_roots) 0 analyzed;
    violations =
      List.concat_map (fun r -> r.file_violations) reports
      |> List.sort_uniq compare_violation;
  }

let analyze_program ?(config = Config.default) ?cache paths =
  let files =
    List.fold_left collect_cmt [] paths |> List.sort_uniq String.compare
  in
  let cached = Hashtbl.create 16 in
  (match Option.bind cache Summary.load_cache with
  | Some c ->
      List.iter
        (fun (cu : Summary.cached_unit) ->
          Hashtbl.replace cached cu.Summary.cu_facts.Summary.u_path cu)
        c.Summary.c_units
  | None -> ());
  let digests = List.map (fun p -> (p, Summary.digest_file p)) files in
  let hit p digest =
    match Hashtbl.find_opt cached (normalize_path p) with
    | Some cu when String.equal cu.Summary.cu_facts.Summary.u_digest digest ->
        Some cu
    | _ -> None
  in
  (* Warm path: every unit hits and every cached report parses -> the
     aggregate is reconstructed without reading a single cmt. *)
  let warm_reports =
    if Hashtbl.length cached = 0 then None
    else
      List.fold_left
        (fun acc (p, digest) ->
          match acc with
          | None -> None
          | Some rs -> (
              match hit p digest with
              | Some cu -> (
                  match file_report_of_json cu.Summary.cu_report with
                  | Ok r -> Some (r :: rs)
                  | Error _ -> None)
              | None -> None))
        (Some []) digests
      |> Option.map List.rev
  in
  match warm_reports with
  | Some reports ->
      ( aggregate reports,
        {
          Summary.st_units = List.length files;
          st_hits = List.length files;
          st_warm = true;
        } )
  | None ->
      let loadeds =
        List.map (fun (p, digest) -> (p, digest, load_unit p)) digests
      in
      let hits = ref 0 in
      let units =
        List.map
          (fun (p, digest, l) ->
            match hit p digest with
            | Some cu ->
                incr hits;
                cu.Summary.cu_facts
            | None -> extract_unit ~config p digest l)
          loadeds
      in
      let summaries = summaries_of_units units in
      let reports =
        List.map
          (fun (_, _, l) -> diagnose_unit ~config ~summaries:(Some summaries) l)
          loadeds
      in
      (match cache with
      | Some cache_file ->
          let c_units =
            List.map2
              (fun u r ->
                { Summary.cu_facts = u; cu_report = file_report_to_json r })
              units reports
          in
          ignore (Summary.save_cache cache_file { Summary.c_units })
      | None -> ());
      ( aggregate reports,
        {
          Summary.st_units = List.length files;
          st_hits = !hits;
          st_warm = false;
        } )

let analyze_paths ?(config = Config.default) paths =
  fst (analyze_program ~config paths)
