(** Typed-AST semantic analysis over the [.cmt] files dune produces.

    Complements the syntactic [Wa_lint_core.Lint]: the passes here see
    resolved paths and inferred types, so they check the {e meaning}
    of the code —

    - [domain-capture] — a closure reaching
      [Wa_util.Parallel.{iter,init,map_array,fold_float_max}] writes a
      captured ref / mutable field / array / container: unsynchronized
      shared state across worker domains ([Atomic.t] exempt,
      whitelisted sites skipped);
    - [unit-mix] — abstract interpretation over
      {power, distance, distance{^α}, gain, log-domain, dimensionless}:
      additions/comparisons mixing log- and linear-domain quantities,
      distinct linear quantities added, log-domain floats passed to a
      [~power:] argument, [Logfloat.of_log]/[of_float] boundary misuse;
    - [float-unguarded] — on hot paths, division / [log] / [sqrt]
      whose denominator/argument is not provably nonzero (positive
      sources, nonzero literals, products/powers of those, or
      enclosing guards);
    - [nan-compare] — the same unguarded shapes inside a comparator
      passed to a sort;
    - [exn-escape] — a raise inside a [Parallel] chunk closure with no
      enclosing [try] in the closure;
    - [cmt-error] — the [.cmt] file cannot be read.

    The analysis is intraprocedural (calls are not followed).
    Suppress with [[@wa.check.allow "rule …"]] on the offending
    expression or any enclosing one, or a floating
    [[@@@wa.check.allow "rule …"]] for the whole file. *)

val all_rules : string list

module Config : sig
  type t = {
    hot_paths : string list;
        (** Path prefixes where [float-unguarded] applies. *)
    capture_allowed : string list;
        (** Path prefixes exempt from [domain-capture]/[exn-escape]
            (the audited concurrency core). *)
    positive_sources : (string * string) list;
        (** [(Module, fn)] pairs whose results are positive by
            construction (validated at the source), trusted as nonzero
            denominators. *)
    positive_maps : (string * string) list;
        (** [(Module, fn)] pairs that preserve positivity: a (full)
            application to a nonzero operand is nonzero, and a partial
            application bound to a local name carries the guarantee to
            later call sites ([let pow = Params.alpha_pow p]). *)
  }

  val default : t
  (** Hot paths [lib/sinr/] + [lib/core/conflict.ml]; capture
      whitelist [lib/obs/] + [lib/util/parallel.ml]; positive sources
      [Linkset.length] and friends (zero-length links are rejected at
      [Link.make]) and [Power.value]/[vector] (validated positive);
      positive maps [Params.alpha_pow]. *)
end

type violation = {
  file : string;  (** Source path as recorded in the [.cmt]. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based byte column. *)
  rule : string;
  message : string;
}

val equal_violation : violation -> violation -> bool
val compare_violation : violation -> violation -> int
val pp_violation : Format.formatter -> violation -> unit

val violation_to_json : violation -> Wa_util.Json.t
val violation_of_json : Wa_util.Json.t -> (violation, string) result

type report = {
  files_scanned : int;  (** Implementations actually analyzed. *)
  closures_analyzed : int;  (** Parallel chunk closures inspected. *)
  expressions_analyzed : int;
      (** Expressions visited by the unit pass — the coverage number
          surfaced by [--stats]. *)
  violations : violation list;
}

val report_to_json : report -> Wa_util.Json.t
val report_of_json : Wa_util.Json.t -> (report, string) result

type file_report = {
  source : string option;
  analyzed : bool;  (** False for interfaces, packs, generated alias
                        modules, unreadable files. *)
  file_violations : violation list;
  file_closures : int;
  file_expressions : int;
}

val analyze_cmt : ?config:Config.t -> string -> file_report
(** Analyze one [.cmt] file; violations sorted by position. *)

val analyze_paths : ?config:Config.t -> string list -> report
(** Recursively analyze every [.cmt] under the given files/directories
    (descending into dune's hidden [.objs] directories).
    Deterministic: files and violations are sorted, duplicates
    removed. *)
