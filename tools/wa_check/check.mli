(** Typed-AST semantic analysis over the [.cmt] files dune produces.

    Complements the syntactic [Wa_lint_core.Lint]: the passes here see
    resolved paths and inferred types, so they check the {e meaning}
    of the code.  Since PR 8 the analysis is whole-program: a first
    phase extracts serializable per-function facts from every unit, a
    second builds the call graph and runs a bottom-up fixpoint over
    its SCCs ([Summary.solve]), and a third re-walks each unit with
    the summary table in hand.  Passes —

    - [domain-capture] — a closure reaching
      [Wa_util.Parallel.{iter,init,map_array,fold_float_max}] writes a
      captured ref / mutable field / array / container, directly or
      through any call chain whose summary records a write to
      module-level or parameter-reachable non-[Atomic] state
      ([Atomic.t] exempt, whitelisted sites skipped);
    - [unit-mix] — abstract interpretation over
      {power, distance, distance{^α}, gain, log-domain, dimensionless}:
      additions/comparisons mixing log- and linear-domain quantities,
      distinct linear quantities added, log-domain floats passed to a
      [~power:] argument, [Logfloat.of_log]/[of_float] boundary
      misuse; callee result domains come from the summary table;
    - [float-unguarded] — on hot paths, division / [log] / [sqrt]
      whose denominator/argument is not provably nonzero: positive
      sources, literals, products/powers, enclosing guards,
      whole-program record-field bounds (every construction site of
      [Params.t] proves [alpha > 2]), callees summarized as returning
      a positive float, witness refs, and positive-array invariants;
      operands only a caller can prove become preconditions discharged
      at every hot call site;
    - [nan-compare] — the same unguarded shapes inside a comparator
      passed to a sort;
    - [exn-escape] — a raise that can cross a [Parallel] chunk
      boundary: direct, or via a callee whose transitive may-raise set
      is not covered by enclosing handlers ([Fun.protect] bodies count
      as handled);
    - [hot-alloc] — functions annotated [[@wa.hot]] are certified
      transitively allocation-free, with the allocating call chain
      printed (model limits documented in DESIGN.md §14);
    - [lockset] — mutable state annotated
      [[@wa.guarded_by "Cache.t.mutex"]] must only be touched with the
      guard held; held-lock sets flow through [Mutex.protect], in-unit
      lock wrappers, and lock–unlock statement sequences, and
      undischarged requirements propagate to callers through the
      summary table — a requirement surviving to a function nothing
      calls is a race ([[@wa.benign_race]] declares an intentional
      one);
    - [lock-order] — the global lock-acquisition-order graph (nested
      acquisitions, direct and through calls made with locks held)
      must be acyclic; each edge of a cycle is reported with both
      conflicting chains;
    - [event-loop-block] — from [[@wa.event_loop]] roots, no blocking
      primitive ([Condition.wait], [Thread.delay], blocking [Unix]
      syscalls, [[@wa.compute]] bodies) may be transitively reachable
      outside closures deferred to the pool; the blocking chain is
      printed (soundness caveats in DESIGN.md §15);
    - [check-then-act] — [Atomic.set] guarded by a branch on
      [Atomic.get] of the same atom is a race window; use
      [compare_and_set];
    - [cmt-error] — the [.cmt] file cannot be read.

    Suppress with [[@wa.check.allow "rule …"]] on the offending
    expression or any enclosing one, or a floating
    [[@@@wa.check.allow "rule …"]] for the whole file. *)

val all_rules : string list

module Config : sig
  type t = {
    hot_paths : string list;
        (** Path prefixes where [float-unguarded] applies. *)
    capture_allowed : string list;
        (** Path prefixes exempt from [domain-capture]/[exn-escape]
            (the audited concurrency core); their summaries record no
            writes or raises. *)
    positive_sources : (string * string) list;
        (** [(Module, fn)] pairs whose results are positive by
            construction (validated at the source), trusted as nonzero
            denominators. *)
    positive_maps : (string * string) list;
        (** [(Module, fn)] pairs that preserve positivity: a (full)
            application to a nonzero operand is nonzero, and a partial
            application bound to a local name carries the guarantee to
            later call sites ([let pow = Params.alpha_pow p]). *)
  }

  val default : t
  (** Hot paths [lib/sinr/] + [lib/core/conflict.ml]; capture
      whitelist [lib/obs/] + [lib/util/parallel.ml]; positive sources
      [Linkset.length] and friends (zero-length links are rejected at
      [Link.make]) and [Power.value]/[vector] (validated positive);
      positive maps [Params.alpha_pow]/[Params.pow_apply]. *)
end

type violation = {
  file : string;  (** Source path as recorded in the [.cmt]. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based byte column. *)
  rule : string;
  message : string;
}

val equal_violation : violation -> violation -> bool
val compare_violation : violation -> violation -> int
val pp_violation : Format.formatter -> violation -> unit

val violation_to_json : violation -> Wa_util.Json.t
val violation_of_json : Wa_util.Json.t -> (violation, string) result

type report = {
  files_scanned : int;  (** Implementations actually analyzed. *)
  closures_analyzed : int;  (** Parallel chunk closures inspected. *)
  expressions_analyzed : int;
      (** Expressions visited by the unit pass — the coverage number
          surfaced by [--stats]. *)
  guarded_accesses : int;
      (** Guarded-field accesses certified lock-held. *)
  event_loop_roots : int;
      (** [[@wa.event_loop]] roots certified non-blocking. *)
  violations : violation list;
}

val report_to_json : report -> Wa_util.Json.t
val report_of_json : Wa_util.Json.t -> (report, string) result

type file_report = {
  source : string option;
  analyzed : bool;  (** False for interfaces, packs, generated alias
                        modules, unreadable files. *)
  file_violations : violation list;
  file_closures : int;
  file_expressions : int;
  file_guarded : int;  (** Certified guarded accesses in this unit. *)
  file_roots : int;
      (** Certified [[@wa.event_loop]] roots in this unit. *)
}

val file_report_to_json : file_report -> Wa_util.Json.t
val file_report_of_json : Wa_util.Json.t -> (file_report, string) result
(** Canonical codec for the cache: [of_json] of its own [to_json]
    output reconstructs the report exactly, which is what makes warm
    aggregate reports byte-identical to cold ones. *)

type summaries = {
  tbl : Summary.table;
  facts : (string, Summary.fn_fact) Hashtbl.t;
  srcs : (string, string) Hashtbl.t;
      (** fq -> defining unit's source path; whole-program diagnoses
          attribute each fact to exactly one unit through this (a
          module-prefix test would let a dune wrapper module claim its
          whole library a second time). *)
  lock_cycles : (string * int * string) list;
      (** [(owner fq, line, message)]: lock-order cycle edges, each
          attributed to the unit owning its outer acquisition so
          per-file reports stay cacheable. *)
}
(** The whole-program phase-2 result: solved summaries plus the raw
    facts (the latter drive [hot-alloc]'s call-chain walk) and the
    global lock-order verdict. *)

val summarize_paths : ?config:Config.t -> string list -> summaries
(** Extract facts from every [.cmt] under the given roots and solve.
    No diagnostics are emitted. *)

val analyze_cmt :
  ?config:Config.t -> ?summaries:summaries -> string -> file_report
(** Analyze one [.cmt] file; violations sorted by position.  Without
    [summaries] the interprocedural provers and [hot-alloc] are
    disabled (intraprocedural behavior). *)

val analyze_program :
  ?config:Config.t ->
  ?cache:string ->
  string list ->
  report * Summary.cache_stats
(** Whole-program run over every [.cmt] under the given
    files/directories (including dune's [.objs] dirs).  With [~cache],
    per-unit facts and reports are keyed by [.cmt] digest in the given
    file: a fully-warm run rebuilds the aggregate report byte-for-byte
    without loading a single Typedtree; a partial hit skips extraction
    for unchanged units but re-solves and re-diagnoses everything
    (summaries are global), then rewrites the cache. *)

val analyze_paths : ?config:Config.t -> string list -> report
(** [analyze_program] without a cache, keeping only the report. *)
