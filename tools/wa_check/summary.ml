(* Whole-program summary engine for wa_check.

   check.ml extracts serializable per-unit {e facts} from each
   Typedtree (direct allocations, raises, writes, calls with argument
   maps, record-field bounds, positivity of results); this module owns
   everything that happens {e between} units: the call graph, the
   bottom-up fixpoint over its strongly connected components, the
   global record-field invariant table, and the on-disk cache keyed by
   [.cmt] digest that makes warm re-runs skip the Typedtrees entirely.

   All fixpoints are standard:

   - allocation, may-raise and write-footprints are {e least}
     fixpoints (start from the direct facts, propagate along calls
     until stable; unknown callees were already pessimized at
     extraction time);
   - returns-positive is a {e greatest} fixpoint (every function in an
     SCC is assumed positive, assumptions are refuted until stable) —
     the coinductive reading is sound for the terminating functions
     the analyzer targets, and it is what lets mutual recursion
     ([fa]/[fb] fixtures, loops through [Linkset]) prove positivity.

   Nothing here touches compiler-libs: facts are plain strings and
   ints, so the cache round-trips through [Wa_util.Json] and the
   fixpoint is testable without a single [.cmt]. *)

module Json = Wa_util.Json
module SSet = Set.Make (String)

(* Facts ------------------------------------------------------------- *)

(* Lower bound of a float quantity: value >= lb, or > lb when
   [strict].  The meet across construction sites keeps the weakest
   claim; [None] (no information) absorbs. *)
type bound = { lb : float; strict : bool }

let meet_bound a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some a, Some b ->
      if Float.equal a.lb b.lb then
        Some { lb = a.lb; strict = a.strict && b.strict }
      else if a.lb < b.lb then Some a
      else Some b

let bound_positive = function
  | Some { lb; strict } -> lb > 0.0 || (Float.equal lb 0.0 && strict)
  | None -> false

(* One call site, as much as the fixpoint needs: the resolved callee
   (dotted fully qualified name), which of the caller's parameters
   flow into which callee argument positions, the exception
   constructors an enclosing [try] around the call would catch ("*"
   for a catch-all pattern), the mutex names held when the call is
   made, and whether the call happens inside a closure handed to a
   spawn point ([Pool.submit] / [Domain.spawn] / the [Parallel]
   entries) — deferred calls run on another domain, so the caller's
   held locks do not apply and the call cannot block the caller. *)
type call = {
  c_callee : string;
  c_args : (int * int) list;  (* callee arg position -> caller param index *)
  c_caught : string list;
  c_held : string list;  (* lock names held at the call site *)
  c_deferred : bool;
}

type fn_fact = {
  f_fq : string;  (* "Wa_core.Conflict.eval" *)
  f_params : string list;  (* labelled name or binder name, curried order *)
  f_line : int;
  f_col : int;
  f_hot : bool;  (* carries a [@wa.hot] annotation *)
  f_alloc : string option;  (* direct allocation: None = clean *)
  f_raises : string list;  (* directly raised, not caught locally *)
  f_global_writes : string list;  (* description of each global write *)
  f_param_writes : int list;  (* parameter indices written directly *)
  f_pos : bool;  (* result nonzero by local reasoning alone *)
  f_pos_deps : string list option;
      (* Some deps: result nonzero iff every dep returns positive *)
  f_preconds : string list;  (* params that must be positive (divisors) *)
  f_dom : string;  (* result unit-domain name, "unknown" when unhelpful *)
  f_calls : call list;
  f_event_loop : bool;  (* carries a [@wa.event_loop] annotation *)
  f_block : string option;
      (* direct blocking primitive reached outside deferred closures:
         "Condition.wait (src:line)", None = locally non-blocking *)
  f_locks : string list;  (* lock names acquired anywhere in the body *)
  f_lock_edges : (string * string * int) list;
      (* (held, acquired, line): nested acquisition observed in the body *)
  f_requires : (string * string) list;
      (* (lock, witness): guarded state touched without the lock held;
         becomes a call-site precondition during the fixpoint *)
  f_guarded : int;  (* guarded accesses certified with the lock held *)
}

(* Record-field bound observed at one construction site. *)
type field_fact = {
  r_type : string;  (* dotted type path, "Wa_sinr.Params.t" *)
  r_field : string;
  r_bound : bound option;
}

type unit_facts = {
  u_path : string;  (* .cmt path *)
  u_src : string;  (* source path as recorded in the cmt *)
  u_digest : string;
  u_fns : fn_fact list;
  u_fields : field_fact list;
}

(* Summaries --------------------------------------------------------- *)

type fn_summary = {
  s_fq : string;
  s_params : string list;
  s_line : int;
  s_col : int;
  s_hot : bool;
  s_alloc : string option;  (* Some chain: "f -> g: tuple construction" *)
  s_raises : SSet.t;  (* escaping exception constructors, transitive *)
  s_global_writes : string list;  (* transitive, with call chains *)
  s_param_writes : int list;  (* transitive *)
  s_pos : bool;  (* returns a provably nonzero float *)
  s_preconds : string list;
  s_dom : string;
  s_callers : int;  (* in-tree call sites targeting this function *)
  s_event_loop : bool;
  s_block : string option;  (* Some chain: "f -> g: Condition.wait (...)" *)
  s_locks : (string * string) list;
      (* (lock, via): locks this function may acquire, transitively;
         via is the call path, "" when acquired directly *)
  s_requires : (string * string) list;
      (* (lock, chain): locks that must be held by the caller — every
         requirement left on a zero-caller root is a lockset violation *)
}

type table = {
  fns : (string, fn_summary) Hashtbl.t;
  by_suffix : (string, string list) Hashtbl.t;  (* "Mod.fn" -> fqs *)
  fields : (string * string, bound option) Hashtbl.t;
}

let empty_table () =
  { fns = Hashtbl.create 16; by_suffix = Hashtbl.create 16;
    fields = Hashtbl.create 16 }

let find t fq = Hashtbl.find_opt t.fns fq

(* Last-two-components fallback: "Conflict.eval" resolves when exactly
   one summarized function ends in those components (module aliases
   and re-exports leave some call sites with short paths). *)
let lookup t fq =
  match Hashtbl.find_opt t.fns fq with
  | Some s -> Some s
  | None -> (
      match String.split_on_char '.' fq with
      | [] | [ _ ] -> None
      | parts -> (
          let n = List.length parts in
          let suffix =
            String.concat "." (List.filteri (fun i _ -> i >= n - 2) parts)
          in
          match Hashtbl.find_opt t.by_suffix suffix with
          | Some [ fq ] -> Hashtbl.find_opt t.fns fq
          | _ -> None))

let field_bound t ~type_fq ~field =
  match Hashtbl.find_opt t.fields (type_fq, field) with
  | Some b -> b
  | None -> (
      (* Same suffix fallback as [lookup]: the defining module sees
         its own record type under a short path. *)
      match String.split_on_char '.' type_fq with
      | [] | [ _ ] -> None
      | parts ->
          let n = List.length parts in
          let suffix =
            String.concat "." (List.filteri (fun i _ -> i >= n - 2) parts)
          in
          let hits =
            Hashtbl.fold
              (fun (ty, fd) b acc ->
                if
                  String.equal fd field
                  && (String.equal ty suffix
                     || (String.length ty > String.length suffix
                        && String.sub ty
                             (String.length ty - String.length suffix - 1)
                             (String.length suffix + 1)
                           = "." ^ suffix))
                then b :: acc
                else acc)
              t.fields []
          in
          (match hits with [ b ] -> b | _ -> None))

(* Tarjan ------------------------------------------------------------ *)

(* Strongly connected components of the call graph, emitted in
   reverse topological order (callees before callers), so one
   bottom-up sweep with iteration only {e inside} each SCC reaches the
   least fixpoint. *)
let sccs (nodes : string list) (succ : string -> string list) =
  let index = Hashtbl.create 64 in
  let low = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !out

(* Fixpoint ----------------------------------------------------------- *)

let max_chain_entries = 3

let solve (units : unit_facts list) : table =
  let t = empty_table () in
  let facts = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter (fun f -> Hashtbl.replace facts f.f_fq f) u.u_fns;
      List.iter
        (fun r ->
          let key = (r.r_type, r.r_field) in
          let b =
            match Hashtbl.find_opt t.fields key with
            | None -> r.r_bound
            | Some prev -> meet_bound prev r.r_bound
          in
          Hashtbl.replace t.fields key b)
        u.u_fields)
    units;
  let nodes = Hashtbl.fold (fun fq _ acc -> fq :: acc) facts [] in
  let nodes = List.sort String.compare nodes in
  let succ fq =
    match Hashtbl.find_opt facts fq with
    | None -> []
    | Some f ->
        List.filter_map
          (fun c ->
            if Hashtbl.mem facts c.c_callee then Some c.c_callee else None)
          f.f_calls
  in
  (* Mutable per-function state driven to fixpoint. *)
  let alloc = Hashtbl.create 256 in
  let raises = Hashtbl.create 256 in
  let gwrites = Hashtbl.create 256 in
  let pwrites = Hashtbl.create 256 in
  let pos = Hashtbl.create 256 in
  let callers = Hashtbl.create 256 in
  let block = Hashtbl.create 256 in
  let locks = Hashtbl.create 256 in
  let requires = Hashtbl.create 256 in
  (* Requirements keyed by lock, first witness wins; sorted so the
     fixpoint (and therefore the cache) is deterministic. *)
  let norm_req l =
    let sorted =
      List.sort
        (fun (a, ca) (b, cb) ->
          match String.compare a b with 0 -> String.compare ca cb | c -> c)
        l
    in
    let rec dedup = function
      | (a, ca) :: (b, _) :: rest when String.equal a b ->
          dedup ((a, ca) :: rest)
      | x :: rest -> x :: dedup rest
      | [] -> []
    in
    dedup sorted
  in
  Hashtbl.iter
    (fun fq f ->
      Hashtbl.replace alloc fq f.f_alloc;
      Hashtbl.replace raises fq (SSet.of_list f.f_raises);
      Hashtbl.replace gwrites fq f.f_global_writes;
      Hashtbl.replace pwrites fq f.f_param_writes;
      Hashtbl.replace block fq f.f_block;
      Hashtbl.replace locks fq
        (List.map
           (fun l -> (l, ""))
           (List.sort_uniq String.compare f.f_locks));
      Hashtbl.replace requires fq (norm_req f.f_requires);
      List.iter
        (fun c ->
          Hashtbl.replace callers c.c_callee
            (1 + Option.value ~default:0 (Hashtbl.find_opt callers c.c_callee)))
        f.f_calls)
    facts;
  let union_take xs ys =
    let merged =
      List.sort_uniq String.compare (xs @ ys)
    in
    List.filteri (fun i _ -> i < max_chain_entries) merged
  in
  let short fq =
    match List.rev (String.split_on_char '.' fq) with
    | v :: m :: _ -> m ^ "." ^ v
    | _ -> fq
  in
  (* One propagation step for the least-fixpoint components of [fq];
     returns true when anything changed. *)
  let step fq =
    match Hashtbl.find_opt facts fq with
    | None -> false
    | Some f ->
        let changed = ref false in
        List.iter
          (fun c ->
            match Hashtbl.find_opt facts c.c_callee with
            | None -> ()
            | Some _ ->
                (* allocation chains *)
                (match (Hashtbl.find alloc fq, Hashtbl.find alloc c.c_callee)
                 with
                | None, Some reason ->
                    Hashtbl.replace alloc fq
                      (Some (short c.c_callee ^ " -> " ^ reason));
                    changed := true
                | _ -> ());
                (* may-raise, minus what the call site catches *)
                let callee_raises = Hashtbl.find raises c.c_callee in
                let escaping =
                  if List.mem "*" c.c_caught then SSet.empty
                  else
                    SSet.filter
                      (fun e -> not (List.mem e c.c_caught))
                      callee_raises
                in
                let mine = Hashtbl.find raises fq in
                if not (SSet.subset escaping mine) then begin
                  Hashtbl.replace raises fq (SSet.union mine escaping);
                  changed := true
                end;
                (* write footprints *)
                let cg = Hashtbl.find gwrites c.c_callee in
                if not (List.is_empty cg) then begin
                  let tagged =
                    List.map (fun w -> short c.c_callee ^ " -> " ^ w) cg
                  in
                  let mine = Hashtbl.find gwrites fq in
                  let merged = union_take mine tagged in
                  if merged <> mine then begin
                    Hashtbl.replace gwrites fq merged;
                    changed := true
                  end
                end;
                let cpw = Hashtbl.find pwrites c.c_callee in
                List.iter
                  (fun j ->
                    match List.assoc_opt j c.c_args with
                    | Some i ->
                        let mine = Hashtbl.find pwrites fq in
                        if not (List.mem i mine) then begin
                          Hashtbl.replace pwrites fq
                            (List.sort Int.compare (i :: mine));
                          changed := true
                        end
                    | None -> ())
                  cpw;
                (* blocking chains: a deferred call runs on another
                   domain and cannot block this one *)
                (if not c.c_deferred then
                   match
                     (Hashtbl.find block fq, Hashtbl.find block c.c_callee)
                   with
                   | None, Some reason ->
                       Hashtbl.replace block fq
                         (Some (short c.c_callee ^ " -> " ^ reason));
                       changed := true
                   | _ -> ());
                (* transitive lock acquisitions, for the order graph *)
                (if not c.c_deferred then begin
                   let mine = Hashtbl.find locks fq in
                   let add =
                     List.filter_map
                       (fun (l, via) ->
                         if List.mem_assoc l mine then None
                         else
                           let via' =
                             if String.equal via "" then short c.c_callee
                             else short c.c_callee ^ " -> " ^ via
                           in
                           Some (l, via'))
                       (Hashtbl.find locks c.c_callee)
                   in
                   if not (List.is_empty add) then begin
                     Hashtbl.replace locks fq
                       (List.sort
                          (fun (a, _) (b, _) -> String.compare a b)
                          (add @ mine));
                     changed := true
                   end
                 end);
                (* lock requirements, discharged by locks held at the
                   call site (none apply across a deferral boundary) *)
                let held = if c.c_deferred then [] else c.c_held in
                let mine = Hashtbl.find requires fq in
                let add =
                  List.filter_map
                    (fun (l, chain) ->
                      if List.mem l held || List.mem_assoc l mine then None
                      else Some (l, short c.c_callee ^ " -> " ^ chain))
                    (Hashtbl.find requires c.c_callee)
                in
                if not (List.is_empty add) then begin
                  Hashtbl.replace requires fq (norm_req (add @ mine));
                  changed := true
                end)
          f.f_calls;
        !changed
  in
  let components = sccs nodes succ in
  List.iter
    (fun comp ->
      let continue = ref true in
      while !continue do
        continue := List.exists step comp
      done;
      (* returns-positive: greatest fixpoint inside the component.
         Every member starts from its own claim; members whose claim
         depends on callees get refuted when a dependency fails. *)
      List.iter
        (fun fq ->
          let f = Hashtbl.find facts fq in
          Hashtbl.replace pos fq (f.f_pos || f.f_pos_deps <> None))
        comp;
      let refute = ref true in
      while !refute do
        refute :=
          List.exists
            (fun fq ->
              let f = Hashtbl.find facts fq in
              if not (Hashtbl.find pos fq) then false
              else if f.f_pos then false
              else
                match f.f_pos_deps with
                | None -> false
                | Some deps ->
                    let ok =
                      List.for_all
                        (fun d ->
                          match Hashtbl.find_opt pos d with
                          | Some v -> v
                          | None -> false)
                        deps
                    in
                    if ok then false
                    else begin
                      Hashtbl.replace pos fq false;
                      true
                    end)
            comp
      done)
    components;
  Hashtbl.iter
    (fun fq f ->
      let s =
        {
          s_fq = fq;
          s_params = f.f_params;
          s_line = f.f_line;
          s_col = f.f_col;
          s_hot = f.f_hot;
          s_alloc = Hashtbl.find alloc fq;
          s_raises = Hashtbl.find raises fq;
          s_global_writes = Hashtbl.find gwrites fq;
          s_param_writes = Hashtbl.find pwrites fq;
          s_pos = Hashtbl.find pos fq;
          s_preconds = f.f_preconds;
          s_dom = f.f_dom;
          s_callers = Option.value ~default:0 (Hashtbl.find_opt callers fq);
          s_event_loop = f.f_event_loop;
          s_block = Hashtbl.find block fq;
          s_locks = Hashtbl.find locks fq;
          s_requires = Hashtbl.find requires fq;
        }
      in
      Hashtbl.replace t.fns fq s;
      let suffix = short fq in
      let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_suffix suffix) in
      Hashtbl.replace t.by_suffix suffix (fq :: prev))
    facts;
  t

(* JSON codecs for the cache ------------------------------------------ *)

let bound_to_json = function
  | None -> Json.Null
  | Some { lb; strict } ->
      Json.Obj [ ("lb", Json.Float lb); ("strict", Json.Bool strict) ]

let bound_of_json = function
  | Json.Obj _ as j -> (
      match
        ( Option.bind (Json.member "lb" j) Json.to_float_opt,
          Json.member "strict" j )
      with
      | Some lb, Some (Json.Bool strict) -> Some { lb; strict }
      | _ -> None)
  | _ -> None

let strings l = Json.List (List.map (fun s -> Json.String s) l)

let strings_of j =
  match j with
  | Some (Json.List l) ->
      Some (List.filter_map Json.to_string_opt l)
  | _ -> None

let pairs l =
  Json.List
    (List.map (fun (a, b) -> Json.List [ Json.String a; Json.String b ]) l)

let pairs_of j =
  match j with
  | Some (Json.List l) ->
      Some
        (List.filter_map
           (function
             | Json.List [ Json.String a; Json.String b ] -> Some (a, b)
             | _ -> None)
           l)
  | _ -> None

let call_to_json c =
  Json.Obj
    [
      ("callee", Json.String c.c_callee);
      ( "args",
        Json.List
          (List.map
             (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ])
             c.c_args) );
      ("caught", strings c.c_caught);
      ("held", strings c.c_held);
      ("deferred", Json.Bool c.c_deferred);
    ]

let call_of_json j =
  match
    ( Option.bind (Json.member "callee" j) Json.to_string_opt,
      Json.member "args" j,
      strings_of (Json.member "caught" j),
      strings_of (Json.member "held" j),
      Json.member "deferred" j )
  with
  | ( Some c_callee,
      Some (Json.List args),
      Some c_caught,
      Some c_held,
      Some (Json.Bool c_deferred) ) ->
      let c_args =
        List.filter_map
          (function
            | Json.List [ Json.Int a; Json.Int b ] -> Some (a, b)
            | _ -> None)
          args
      in
      Some { c_callee; c_args; c_caught; c_held; c_deferred }
  | _ -> None

let fn_to_json f =
  Json.Obj
    [
      ("fq", Json.String f.f_fq);
      ("params", strings f.f_params);
      ("line", Json.Int f.f_line);
      ("col", Json.Int f.f_col);
      ("hot", Json.Bool f.f_hot);
      ( "alloc",
        match f.f_alloc with None -> Json.Null | Some r -> Json.String r );
      ("raises", strings f.f_raises);
      ("global_writes", strings f.f_global_writes);
      ("param_writes", Json.List (List.map (fun i -> Json.Int i) f.f_param_writes));
      ("pos", Json.Bool f.f_pos);
      ( "pos_deps",
        match f.f_pos_deps with None -> Json.Null | Some d -> strings d );
      ("preconds", strings f.f_preconds);
      ("dom", Json.String f.f_dom);
      ("calls", Json.List (List.map call_to_json f.f_calls));
      ("event_loop", Json.Bool f.f_event_loop);
      ( "block",
        match f.f_block with None -> Json.Null | Some r -> Json.String r );
      ("locks", strings f.f_locks);
      ( "lock_edges",
        Json.List
          (List.map
             (fun (a, b, ln) ->
               Json.List [ Json.String a; Json.String b; Json.Int ln ])
             f.f_lock_edges) );
      ("requires", pairs f.f_requires);
      ("guarded", Json.Int f.f_guarded);
    ]

let fn_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let boolean k =
    match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None
  in
  match
    ( str "fq", strings_of (Json.member "params" j), int "line", int "col",
      boolean "hot", strings_of (Json.member "raises" j),
      strings_of (Json.member "global_writes" j), boolean "pos",
      strings_of (Json.member "preconds" j), str "dom" )
  with
  | Some f_fq, Some f_params, Some f_line, Some f_col, Some f_hot,
    Some f_raises, Some f_global_writes, Some f_pos, Some f_preconds,
    Some f_dom ->
      let f_alloc =
        match Json.member "alloc" j with
        | Some (Json.String s) -> Some s
        | _ -> None
      in
      let f_param_writes =
        match Json.member "param_writes" j with
        | Some (Json.List l) -> List.filter_map Json.to_int_opt l
        | _ -> []
      in
      let f_pos_deps =
        match Json.member "pos_deps" j with
        | Some (Json.List _) -> strings_of (Json.member "pos_deps" j)
        | _ -> None
      in
      let f_calls =
        match Json.member "calls" j with
        | Some (Json.List l) -> List.filter_map call_of_json l
        | _ -> []
      in
      let f_event_loop =
        match Json.member "event_loop" j with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      let f_block =
        match Json.member "block" j with
        | Some (Json.String s) -> Some s
        | _ -> None
      in
      let f_locks =
        Option.value ~default:[] (strings_of (Json.member "locks" j))
      in
      let f_lock_edges =
        match Json.member "lock_edges" j with
        | Some (Json.List l) ->
            List.filter_map
              (function
                | Json.List [ Json.String a; Json.String b; Json.Int ln ] ->
                    Some (a, b, ln)
                | _ -> None)
              l
        | _ -> []
      in
      let f_requires =
        Option.value ~default:[] (pairs_of (Json.member "requires" j))
      in
      let f_guarded =
        Option.value ~default:0
          (Option.bind (Json.member "guarded" j) Json.to_int_opt)
      in
      Some
        {
          f_fq; f_params; f_line; f_col; f_hot; f_alloc; f_raises;
          f_global_writes; f_param_writes; f_pos; f_pos_deps; f_preconds;
          f_dom; f_calls; f_event_loop; f_block; f_locks; f_lock_edges;
          f_requires; f_guarded;
        }
  | _ -> None

let field_to_json r =
  Json.Obj
    [
      ("type", Json.String r.r_type);
      ("field", Json.String r.r_field);
      ("bound", bound_to_json r.r_bound);
    ]

let field_of_json j =
  match
    ( Option.bind (Json.member "type" j) Json.to_string_opt,
      Option.bind (Json.member "field" j) Json.to_string_opt )
  with
  | Some r_type, Some r_field ->
      let r_bound =
        Option.bind (Json.member "bound" j) (fun b -> bound_of_json b)
      in
      Some { r_type; r_field; r_bound }
  | _ -> None

let unit_to_json u =
  Json.Obj
    [
      ("path", Json.String u.u_path);
      ("src", Json.String u.u_src);
      ("digest", Json.String u.u_digest);
      ("fns", Json.List (List.map fn_to_json u.u_fns));
      ("fields", Json.List (List.map field_to_json u.u_fields));
    ]

let unit_of_json j =
  match
    ( Option.bind (Json.member "path" j) Json.to_string_opt,
      Option.bind (Json.member "src" j) Json.to_string_opt,
      Option.bind (Json.member "digest" j) Json.to_string_opt )
  with
  | Some u_path, Some u_src, Some u_digest ->
      let u_fns =
        match Json.member "fns" j with
        | Some (Json.List l) -> List.filter_map fn_of_json l
        | _ -> []
      in
      let u_fields =
        match Json.member "fields" j with
        | Some (Json.List l) -> List.filter_map field_of_json l
        | _ -> []
      in
      Some { u_path; u_src; u_digest; u_fns; u_fields }
  | _ -> None

(* Cache -------------------------------------------------------------- *)

(* Version 2: concurrency facts (held locks at call sites, deferred
   closures, blocking reasons, lock acquisitions and order edges,
   guarded-access requirements) joined the per-function record. *)
let cache_version = 2

let digest_file path = Digest.to_hex (Digest.file path)

type cached_unit = {
  cu_facts : unit_facts;
  cu_report : Json.t;  (* the per-unit file report, opaque to us *)
}

type cache = { c_units : cached_unit list }

let cache_to_json c =
  Json.Obj
    [
      ("tool", Json.String "wa_check_cache");
      ("version", Json.Int cache_version);
      ( "units",
        Json.List
          (List.map
             (fun cu ->
               Json.Obj
                 [
                   ("facts", unit_to_json cu.cu_facts);
                   ("report", cu.cu_report);
                 ])
             c.c_units) );
    ]

let cache_of_json j =
  match
    (Option.bind (Json.member "version" j) Json.to_int_opt, Json.member "units" j)
  with
  | Some v, Some (Json.List units) when v = cache_version ->
      let c_units =
        List.filter_map
          (fun u ->
            match (Json.member "facts" u, Json.member "report" u) with
            | Some facts, Some report ->
                Option.map
                  (fun cu_facts -> { cu_facts; cu_report = report })
                  (unit_of_json facts)
            | _ -> None)
          units
      in
      Some { c_units }
  | _ -> None

let load_cache path =
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception _ -> None
    | data -> (
        match Json.of_string data with
        | Error _ -> None
        | Ok j -> cache_of_json j)

let save_cache path c =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Json.to_channel ~pretty:false oc (cache_to_json c);
        output_char oc '\n');
    true
  with _ -> false

type cache_stats = {
  st_units : int;
  st_hits : int;
  st_warm : bool;  (* every unit hit: no Typedtree was loaded *)
}

let stats_to_json st =
  Json.Obj
    [
      ("units", Json.Int st.st_units);
      ("hits", Json.Int st.st_hits);
      ("misses", Json.Int (st.st_units - st.st_hits));
      ("warm", Json.Bool st.st_warm);
    ]
