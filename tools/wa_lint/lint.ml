(* Source-level static analysis for the wireless_agg tree.

   The linter parses every .ml file with compiler-libs and walks the
   Parsetree; the rules are deliberately syntactic (no type
   information), so each one is defined by a decidable shape of the
   AST plus a small path-based configuration.  What the rules buy:

   - [list-eq]: polymorphic [=]/[<>] against a list literal.  Structural
     equality on lists is O(n), allocates closures under flambda-less
     builds, and silently misbehaves on float-bearing elements; a
     pattern match (or [List.is_empty]) is always available.
   - [float-eq]: polymorphic [=]/[<>] where an operand is syntactically
     float-valued (float literal, [nan]/[infinity]/..., float
     arithmetic, or an application into a known float-bearing module
     such as [Link]/[Vec2]).  Polymorphic equality on floats disagrees
     with IEEE semantics readers expect ([nan = nan] is [false] but
     [compare nan nan = 0]) and on [-0.]; [Float.equal]/[Float.compare]
     or a domain comparator ([Link.equal]) state the intent.
   - [poly-compare]: any bare [compare] (or [Stdlib.compare]) in
     expression position.  The polymorphic comparison is a segfault
     hazard on functional values, wrong on NaN, and slower than the
     monomorphic comparators everywhere it is right.
   - [atomic-scope]: [Atomic.*] outside the approved concurrency core
     (default: [lib/obs/] and [lib/util/parallel.ml]).  Lock-free code
     is only reviewable while it stays in one place.
   - [unix-scope]: [Unix.*] outside the I/O perimeter (default:
     [lib/service/], [lib/io/], [bin/], [bench/]).  Syscalls in the
     numeric and algorithmic layers make them untestable without a
     kernel and invisible to the event-loop blocking certification in
     wa_check, which audits the perimeter only.
   - [obj-magic]: [Obj.magic], anywhere.
   - [printf-hot]: any [Printf.*] reference inside a configured hot
     path (default: [lib/sinr/] and [lib/core/conflict.ml]).  Hot paths
     must not format; even [sprintf] allocates and drags the format
     machinery into otherwise-pure numeric code.
   - [missing-mli]: a [.ml] under a configured root (default [lib/])
     with no sibling [.mli].
   - [unused-export]: a value exported by a [.mli] under a configured
     root but never referenced outside its own module.  Only active
     when the caller supplies the reference scan set ([ref_paths]):
     deciding "never referenced" requires seeing every consumer, so
     partial scans (the smoke subset) skip the rule rather than lie.

   Suppressions: [[@wa.lint.allow "rule ..."]] on the offending
   expression, or a floating [[@@@wa.lint.allow "rule ..."]] to waive
   rules for a whole file.  Unknown attributes are ignored by the
   compiler, so suppressions cost nothing at build time. *)

module Json = Wa_util.Json

(* Rules ------------------------------------------------------------- *)

let rule_list_eq = "list-eq"
let rule_float_eq = "float-eq"
let rule_poly_compare = "poly-compare"
let rule_atomic_scope = "atomic-scope"
let rule_unix_scope = "unix-scope"
let rule_obj_magic = "obj-magic"
let rule_printf_hot = "printf-hot"
let rule_missing_mli = "missing-mli"
let rule_unused_export = "unused-export"
let rule_parse_error = "parse-error"

let all_rules =
  [
    rule_list_eq;
    rule_float_eq;
    rule_poly_compare;
    rule_atomic_scope;
    rule_unix_scope;
    rule_obj_magic;
    rule_printf_hot;
    rule_missing_mli;
    rule_unused_export;
    rule_parse_error;
  ]

(* Configuration ------------------------------------------------------ *)

module Config = struct
  type t = {
    hot_paths : string list;
    atomic_allowed : string list;
    unix_allowed : string list;
    float_modules : string list;
    mli_required_roots : string list;
    export_roots : string list;
  }

  let default =
    {
      hot_paths = [ "lib/sinr/"; "lib/core/conflict.ml" ];
      atomic_allowed = [ "lib/obs/"; "lib/util/parallel.ml" ];
      unix_allowed = [ "lib/service/"; "lib/io/"; "bin/"; "bench/" ];
      float_modules = [ "Link"; "Vec2"; "Float" ];
      mli_required_roots = [ "lib/" ];
      export_roots = [ "lib/" ];
    }
end

(* Violations --------------------------------------------------------- *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let equal_violation a b =
  String.equal a.file b.file && a.line = b.line && a.col = b.col
  && String.equal a.rule b.rule
  && String.equal a.message b.message

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp_violation fmt v =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

(* JSON round-trip ---------------------------------------------------- *)

let violation_to_json v =
  Json.Obj
    [
      ("file", Json.String v.file);
      ("line", Json.Int v.line);
      ("col", Json.Int v.col);
      ("rule", Json.String v.rule);
      ("message", Json.String v.message);
    ]

let violation_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match (str "file", int "line", int "col", str "rule", str "message") with
  | Some file, Some line, Some col, Some rule, Some message ->
      Ok { file; line; col; rule; message }
  | _ -> Error "violation_of_json: missing or ill-typed field"

type report = { files_scanned : int; violations : violation list }

let report_to_json r =
  Json.Obj
    [
      ("tool", Json.String "wa_lint");
      ("version", Json.Int 1);
      ("files_scanned", Json.Int r.files_scanned);
      ("violation_count", Json.Int (List.length r.violations));
      ("violations", Json.List (List.map violation_to_json r.violations));
    ]

let report_of_json j =
  match
    ( Option.bind (Json.member "files_scanned" j) Json.to_int_opt,
      Json.member "violations" j )
  with
  | Some files_scanned, Some (Json.List vs) ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match violation_of_json v with
            | Ok v -> collect (v :: acc) rest
            | Error _ as e -> e)
      in
      Result.map
        (fun violations -> { files_scanned; violations })
        (collect [] vs)
  | _ -> Error "report_of_json: missing files_scanned/violations"

(* Path helpers ------------------------------------------------------- *)

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let path_matches ~prefixes path =
  let path = normalize_path path in
  List.exists
    (fun prefix ->
      let prefix = normalize_path prefix in
      String.length path >= String.length prefix
      && String.sub path 0 (String.length prefix) = prefix)
    prefixes

(* AST helpers -------------------------------------------------------- *)

open Parsetree

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | path -> Some path
      | exception _ -> None)
  | _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

let poly_eq_name e =
  match Option.map strip_stdlib (flatten_ident e) with
  | Some [ ("=" | "<>" | "==" | "!=") as op ] -> Some op
  | _ -> None

let is_bare_compare e =
  match Option.map strip_stdlib (flatten_ident e) with
  | Some [ "compare" ] -> true
  | _ -> false

let rec is_list_literal e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> true
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) -> true
  | Pexp_constraint (e, _) -> is_list_literal e
  | _ -> false

let float_idents =
  [ "nan"; "infinity"; "neg_infinity"; "epsilon_float"; "max_float"; "min_float" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_funs =
  [ "sqrt"; "exp"; "log"; "log10"; "expm1"; "log1p"; "cos"; "sin"; "tan";
    "acos"; "asin"; "atan"; "atan2"; "hypot"; "cosh"; "sinh"; "tanh"; "ceil";
    "floor"; "abs_float"; "mod_float"; "float_of_int"; "float_of_string" ]

(* Functions of float-bearing modules that do NOT return the module's
   float-bearing type (or a float): calling these is not evidence the
   surrounding comparison is on floats. *)
let non_float_results =
  [ "compare"; "equal"; "hash"; "to_string"; "describe"; "pp"; "to_int";
    "sign_bit"; "classify_float"; "of_int"; "to_int_opt" ]

let rec is_float_expr (cfg : Config.t) e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | [ x ] -> List.mem x float_idents
      | _ -> false
      | exception _ -> false)
  | Pexp_apply (f, _) -> (
      match flatten_ident f with
      | Some [ op ] -> List.mem op float_ops || List.mem op float_funs
      | Some path -> (
          match strip_stdlib path with
          | [ m; fn ] ->
              List.mem m cfg.Config.float_modules
              && (not (List.mem fn non_float_results))
              && not
                   (String.length fn >= 3
                   && String.sub fn 0 3 = "is_")
          | _ -> false)
      | None -> false)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> is_float_expr cfg e
  | _ -> false

(* Suppressions ------------------------------------------------------- *)

let allows_of_payload = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      String.split_on_char ' ' s |> List.filter (fun x -> x <> "")
  | _ -> []

let allows_of_attrs attrs =
  List.concat_map
    (fun a ->
      if String.equal a.attr_name.txt "wa.lint.allow" then
        allows_of_payload a.attr_payload
      else [])
    attrs

let file_allows structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a when String.equal a.attr_name.txt "wa.lint.allow" ->
          allows_of_payload a.attr_payload
      | _ -> [])
    structure

(* Per-file walk ------------------------------------------------------ *)

type file_ctx = {
  cfg : Config.t;
  path : string;
  hot : bool;
  atomic_ok : bool;
  unix_ok : bool;
  allows : string list;
  mutable found : violation list;
}

let flag ctx ?(attrs = []) loc rule message =
  if
    (not (List.mem rule ctx.allows))
    && not (List.mem rule (allows_of_attrs attrs))
  then
    let pos = loc.Location.loc_start in
    ctx.found <-
      {
        file = ctx.path;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        rule;
        message;
      }
      :: ctx.found

let check_apply ctx e f args =
  (match poly_eq_name f with
  | Some op ->
      let operands = List.map snd args in
      if List.exists is_list_literal operands then
        flag ctx ~attrs:e.pexp_attributes e.pexp_loc rule_list_eq
          (Printf.sprintf
             "polymorphic (%s) against a list literal; match on the \
              structure or use List.is_empty"
             op)
      else if List.exists (is_float_expr ctx.cfg) operands then
        flag ctx ~attrs:e.pexp_attributes e.pexp_loc rule_float_eq
          (Printf.sprintf
             "polymorphic (%s) on a float-valued operand; use Float.equal \
              / Float.compare or a domain comparator (Link.equal, \
              Vec2.equal, ...)"
             op)
  | None -> ());
  ignore args

let check_ident ctx e =
  match flatten_ident e with
  | None -> ()
  | Some path -> (
      if is_bare_compare e then
        flag ctx ~attrs:e.pexp_attributes e.pexp_loc rule_poly_compare
          "bare polymorphic compare; use a type-specific comparator \
           (Int.compare, Float.compare, Link.compare, ...)";
      match strip_stdlib path with
      | "Atomic" :: _ when not ctx.atomic_ok ->
          flag ctx ~attrs:e.pexp_attributes e.pexp_loc rule_atomic_scope
            "Atomic.* outside the concurrency core (allowed: lib/obs/, \
             lib/util/parallel.ml); use a Mutex or move the code"
      | "Unix" :: _ when not ctx.unix_ok ->
          flag ctx ~attrs:e.pexp_attributes e.pexp_loc rule_unix_scope
            "Unix.* outside the I/O perimeter (allowed: lib/service/, \
             lib/io/, bin/, bench/); raise the syscall into the caller \
             or move the code"
      | [ "Obj"; "magic" ] ->
          flag ctx ~attrs:e.pexp_attributes e.pexp_loc rule_obj_magic
            "Obj.magic defeats the type system; find another way"
      | "Printf" :: _ when ctx.hot ->
          flag ctx ~attrs:e.pexp_attributes e.pexp_loc rule_printf_hot
            "Printf on a hot path (lib/sinr, lib/core/conflict.ml); \
             formatting does not belong in the numeric kernels"
      | _ -> ())

let iterator ctx =
  let open Ast_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> check_apply ctx e f args
    | Pexp_ident _ -> check_ident ctx e
    | _ -> ());
    default_iterator.expr it e
  in
  { default_iterator with expr }

let parse_implementation path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

let lint_file ?(config = Config.default) path =
  let npath = normalize_path path in
  match parse_implementation path with
  | exception exn ->
      let line, msg =
        match Location.error_of_exn exn with
        | Some (`Ok err) ->
            ( err.Location.main.Location.loc.Location.loc_start.Lexing.pos_lnum,
              Format.asprintf "%a" Location.print_report err )
        | _ -> (1, Printexc.to_string exn)
      in
      [
        {
          file = npath;
          line;
          col = 0;
          rule = rule_parse_error;
          message = String.concat " " (String.split_on_char '\n' msg);
        };
      ]
  | structure ->
      let ctx =
        {
          cfg = config;
          path = npath;
          hot = path_matches ~prefixes:config.Config.hot_paths npath;
          atomic_ok = path_matches ~prefixes:config.Config.atomic_allowed npath;
          unix_ok = path_matches ~prefixes:config.Config.unix_allowed npath;
          allows = file_allows structure;
          found = [];
        }
      in
      let it = iterator ctx in
      it.Ast_iterator.structure it structure;
      List.sort compare_violation ctx.found

(* Directory driver --------------------------------------------------- *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry <> "" && entry.[0] = '.' then acc
           else if entry = "_build" then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then normalize_path path :: acc
  else acc

let missing_mli_check ~(config : Config.t) files =
  List.filter_map
    (fun ml ->
      if
        path_matches ~prefixes:config.Config.mli_required_roots ml
        && not (Sys.file_exists (Filename.remove_extension ml ^ ".mli"))
      then
        Some
          {
            file = ml;
            line = 1;
            col = 0;
            rule = rule_missing_mli;
            message =
              Printf.sprintf
                "module %s has no interface; every library module keeps a \
                 .mli"
                (String.capitalize_ascii
                   (Filename.remove_extension (Filename.basename ml)));
          }
      else None)
    files

(* unused-export ------------------------------------------------------ *)

let parse_interface path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.interface lexbuf)

let signature_allows signature =
  List.concat_map
    (fun item ->
      match item.psig_desc with
      | Psig_attribute a when String.equal a.attr_name.txt "wa.lint.allow" ->
          allows_of_payload a.attr_payload
      | _ -> [])
    signature

(* Exported value names of [mli] with their locations, minus
   suppressed ones.  An unparseable interface exports nothing — the
   compiler will complain louder than we can. *)
let exports_of_mli mli =
  match parse_interface mli with
  | exception _ -> []
  | signature ->
      if List.mem rule_unused_export (signature_allows signature) then []
      else
        List.filter_map
          (fun item ->
            match item.psig_desc with
            | Psig_value vd
              when not
                     (List.mem rule_unused_export
                        (allows_of_attrs vd.pval_attributes)) ->
                Some (vd.pval_name.Location.txt, vd.pval_loc)
            | _ -> None)
          signature

let is_value_name v =
  v <> "" && not (v.[0] >= 'A' && v.[0] <= 'Z')

(* Qualified references of one parsed file: [M.v] (or [Lib.M.v]) marks
   [(M, v)] used; a module appearing as an open / include / alias
   right-hand side / functor argument / packed module is marked
   wholesale-used — its exports are no longer individually trackable,
   so the rule stays silent about them (conservative, no false
   positives through aliases). *)
let references_of_structure structure =
  let used = Hashtbl.create 64 in
  let wholesale = Hashtbl.create 16 in
  let value_ref l =
    match Longident.flatten l with
    | exception _ -> ()
    | parts -> (
        match List.rev (strip_stdlib parts) with
        | v :: m :: _ when is_value_name v && not (is_value_name m) ->
            Hashtbl.replace used (m, v) ()
        | _ -> ())
  in
  let module_ref l =
    match Longident.flatten l with
    | exception _ -> ()
    | parts -> List.iter (fun m -> Hashtbl.replace wholesale m ()) parts
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> value_ref txt
          | _ -> ());
          default_iterator.expr it e);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; _ } -> module_ref txt
          | _ -> ());
          default_iterator.module_expr it me);
    }
  in
  it.structure it structure;
  (used, wholesale)

(* One checked module: its implementation path, sibling interface, and
   the module name consumers write ([Linkset] — dune's library
   wrapping prefixes never appear in source references). *)
let export_candidates ~(config : Config.t) files =
  List.filter_map
    (fun ml ->
      if path_matches ~prefixes:config.Config.export_roots ml then
        let mli = Filename.remove_extension ml ^ ".mli" in
        if Sys.file_exists mli then
          Some
            ( ml,
              normalize_path mli,
              String.capitalize_ascii
                (Filename.remove_extension (Filename.basename ml)) )
        else None
      else None)
    files

let unused_export_check ~(config : Config.t) ~files ~ref_files =
  let candidates = export_candidates ~config files in
  if List.is_empty candidates then []
  else
    (* Parse every reference file once; a file that does not parse
       contributes no references (its own lint pass reports the
       parse-error). *)
    let refs =
      List.sort_uniq String.compare (files @ ref_files)
      |> List.filter_map (fun path ->
             match parse_implementation path with
             | exception _ -> None
             | s -> Some (path, references_of_structure s))
    in
    List.concat_map
      (fun (ml, mli, base) ->
        (* "Outside its module": the module's own implementation does
           not keep its exports alive. *)
        let elsewhere = List.filter (fun (p, _) -> p <> ml) refs in
        if
          List.exists
            (fun (_, (_, wholesale)) -> Hashtbl.mem wholesale base)
            elsewhere
        then []
        else
          exports_of_mli mli
          |> List.filter_map (fun (name, loc) ->
                 if
                   List.exists
                     (fun (_, (used, _)) -> Hashtbl.mem used (base, name))
                     elsewhere
                 then None
                 else
                   let pos = loc.Location.loc_start in
                   Some
                     {
                       file = mli;
                       line = pos.Lexing.pos_lnum;
                       col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
                       rule = rule_unused_export;
                       message =
                         Printf.sprintf
                           "value %s is exported by %s but never referenced \
                            outside its module; drop it from the interface \
                            (or mark the val [@@wa.lint.allow \
                            \"unused-export\"])"
                           name base;
                     }))
      candidates

let lint_paths ?(config = Config.default) ?ref_paths paths =
  let files =
    List.fold_left collect_ml [] paths |> List.sort_uniq String.compare
  in
  let violations =
    missing_mli_check ~config files
    @ List.concat_map (lint_file ~config) files
    @
    match ref_paths with
    | None -> []
    | Some extra ->
        let ref_files =
          List.fold_left collect_ml [] extra
          |> List.sort_uniq String.compare
        in
        unused_export_check ~config ~files ~ref_files
  in
  {
    files_scanned = List.length files;
    violations = List.sort_uniq compare_violation violations;
  }
