(** Source-level static analysis for the project tree.

    Parses [.ml] files with compiler-libs and enforces the project's
    correctness rules on the Parsetree (no type information; each rule
    is a decidable syntactic shape plus path-based configuration):

    - [list-eq] — polymorphic [=]/[<>] against a list literal;
    - [float-eq] — polymorphic [=]/[<>] with a syntactically
      float-valued operand (literal, [nan]/[infinity]/…, float
      arithmetic, or a call into a float-bearing module);
    - [poly-compare] — bare [compare]/[Stdlib.compare];
    - [atomic-scope] — [Atomic.*] outside the concurrency core;
    - [unix-scope] — [Unix.*] outside the I/O perimeter;
    - [obj-magic] — [Obj.magic];
    - [printf-hot] — [Printf.*] inside a configured hot path;
    - [missing-mli] — a library [.ml] with no sibling [.mli];
    - [unused-export] — a value exported by a library [.mli] but never
      referenced outside its own module (only with [?ref_paths]);
    - [parse-error] — the file does not parse.

    Suppress with [[@wa.lint.allow "rule …"]] on the offending
    expression or a floating [[@@@wa.lint.allow "rule …"]] for the
    whole file. *)

val all_rules : string list

module Config : sig
  type t = {
    hot_paths : string list;
        (** Path prefixes where [printf-hot] applies. *)
    atomic_allowed : string list;
        (** Path prefixes where [Atomic.*] is permitted. *)
    unix_allowed : string list;
        (** Path prefixes where [Unix.*] is permitted. *)
    float_modules : string list;
        (** Modules whose applications count as float-bearing operands
            ([Link], [Vec2], [Float] by default). *)
    mli_required_roots : string list;
        (** Path prefixes under which every [.ml] needs a [.mli]. *)
    export_roots : string list;
        (** Path prefixes whose [.mli] exports [unused-export]
            audits. *)
  }

  val default : t
  (** The project rules: hot paths [lib/sinr/] + [lib/core/conflict.ml],
      atomics confined to [lib/obs/] + [lib/util/parallel.ml], syscalls
      confined to [lib/service/] + [lib/io/] + [bin/] + [bench/], [.mli]
      required (and exports audited) under [lib/]. *)
end

type violation = {
  file : string;  (** Normalized ('/'-separated) path as scanned. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based byte column. *)
  rule : string;
  message : string;
}

val equal_violation : violation -> violation -> bool
val compare_violation : violation -> violation -> int
val pp_violation : Format.formatter -> violation -> unit

val violation_to_json : violation -> Wa_util.Json.t
val violation_of_json : Wa_util.Json.t -> (violation, string) result

type report = { files_scanned : int; violations : violation list }

val report_to_json : report -> Wa_util.Json.t
val report_of_json : Wa_util.Json.t -> (report, string) result

val lint_file : ?config:Config.t -> string -> violation list
(** Lint one file; violations sorted by position.  A file that does
    not parse yields a single [parse-error] violation. *)

val lint_paths : ?config:Config.t -> ?ref_paths:string list -> string list -> report
(** Recursively lint every [.ml] under the given files/directories
    (skipping [_build] and dotfiles), including the [missing-mli]
    check.  Deterministic: files and violations are sorted with
    duplicates removed, so overlapping path arguments (or overlapping
    alias invocations) never double-report.

    Passing [?ref_paths] activates [unused-export]: the [.mli]s under
    [Config.export_roots] are audited for values never referenced
    from any other scanned file, where the reference set is the
    scanned files plus everything under [ref_paths] (reference-only:
    those files are parsed but not linted or counted).  Without
    [?ref_paths] the rule stays off — a partial scan cannot decide
    "never referenced". *)
