(* Command-line front end: wa_lint [--json FILE] [--quiet] PATH...

   Exit status: 0 clean, 1 violations found, 2 usage/setup error. *)

module Lint = Wa_lint_core.Lint

let usage = "wa_lint [--json FILE] [--quiet] PATH..."

let () =
  let json_out = ref None in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE Write the machine-readable report to FILE" );
      ("--quiet", Arg.Set quiet, " Print nothing but the verdict line");
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with _ -> exit 2);
  let paths = List.rev !paths in
  if List.is_empty paths then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "wa_lint: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let report = Lint.lint_paths paths in
  if not !quiet then
    List.iter
      (fun v -> Format.printf "%a@." Lint.pp_violation v)
      report.Lint.violations;
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Wa_util.Json.to_string (Lint.report_to_json report));
      output_char oc '\n';
      close_out oc)
    !json_out;
  let n = List.length report.Lint.violations in
  Printf.printf "wa_lint: %d file(s), %d violation(s)\n" report.Lint.files_scanned n;
  if n > 0 then exit 1
