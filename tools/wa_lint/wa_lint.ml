(* Command-line front end:
   wa_lint [--json FILE] [--quiet] [--list-rules] [--refs PATH] PATH...

   --refs names reference-only scan roots (parsed for cross-module
   references, not linted) and activates the unused-export rule.
   Exit status: 0 clean, 1 violations found, 2 usage/setup error. *)

module Lint = Wa_lint_core.Lint

let usage =
  "wa_lint [--json FILE] [--quiet] [--list-rules] [--refs PATH] PATH..."

let () =
  let json_out = ref None in
  let quiet = ref false in
  let list_rules = ref false in
  let refs = ref [] in
  let paths = ref [] in
  let spec =
    [
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE Write the machine-readable report to FILE" );
      ("--quiet", Arg.Set quiet, " Print nothing but the verdict line");
      ("--list-rules", Arg.Set list_rules, " Print the rule names and exit");
      ( "--refs",
        Arg.String (fun p -> refs := p :: !refs),
        "PATH Reference-only scan root (repeatable); activates \
         unused-export" );
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with _ -> exit 2);
  if !list_rules then begin
    List.iter print_endline Lint.all_rules;
    exit 0
  end;
  let paths = List.rev !paths in
  if List.is_empty paths then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "wa_lint: no such path: %s\n" p;
        exit 2
      end)
    (paths @ !refs);
  let ref_paths =
    match !refs with [] -> None | rs -> Some (List.rev rs)
  in
  let report = Lint.lint_paths ?ref_paths paths in
  if not !quiet then
    List.iter
      (fun v -> Format.printf "%a@." Lint.pp_violation v)
      report.Lint.violations;
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Wa_util.Json.to_string (Lint.report_to_json report));
      output_char oc '\n';
      close_out oc)
    !json_out;
  let n = List.length report.Lint.violations in
  Printf.printf "wa_lint: %d file(s), %d violation(s)\n" report.Lint.files_scanned n;
  if n > 0 then exit 1
