(* bench_diff: regression gate over two benchmark JSON documents.

   Usage:
     bench_diff [--tol PCT] [--field-tol SUBSTR=PCT]... [--min-delta V]
                [--quiet] BASELINE.json CURRENT.json

   Both documents are flattened to path -> number maps (arrays of
   objects are keyed by an identifying field — n, op, name, id — when
   one is present, so adding a row never misaligns the others).  Only
   paths present in both documents are compared; everything else is
   informational.  Whether a move is a regression follows from the
   metric's name: *_ms / *_ns / *_s / *bytes / misses / overloaded /
   evictions are lower-is-better, *rps / *speedup / rate / hits are
   higher-is-better, anything else is reported but never gates.

   Exit status: 0 when no compared field regressed beyond its
   tolerance, 1 otherwise, 2 on usage or parse errors. *)

module Json = Wa_util.Json

(* Flattening ----------------------------------------------------------- *)

let key_fields = [ "n"; "op"; "name"; "id"; "key" ]

let element_key fields =
  List.find_map
    (fun k ->
      match List.assoc_opt k fields with
      | Some (Json.Int v) -> Some (Printf.sprintf "%s=%d" k v)
      | Some (Json.String v) -> Some (Printf.sprintf "%s=%s" k v)
      | _ -> None)
    key_fields

let flatten json =
  let out = ref [] in
  let rec go path = function
    | Json.Int v -> out := (path, float_of_int v) :: !out
    | Json.Float v -> if not (Float.is_nan v) then out := (path, v) :: !out
    | Json.Bool _ | Json.String _ | Json.Null -> ()
    | Json.Obj fields ->
        List.iter (fun (k, v) -> go (path ^ "." ^ k) v) fields
    | Json.List items ->
        List.iteri
          (fun i item ->
            let seg =
              match item with
              | Json.Obj fields -> (
                  match element_key fields with
                  | Some k -> k
                  | None -> string_of_int i)
              | _ -> string_of_int i
            in
            go (Printf.sprintf "%s[%s]" path seg) item)
          items
  in
  go "" json;
  List.rev !out

(* Direction heuristics -------------------------------------------------- *)

let has_suffix s suf =
  String.length s >= String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf)
     = suf

let contains s sub =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  at 0

let leaf path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

type direction = Lower_better | Higher_better | Neutral

let direction path =
  let l = String.lowercase_ascii (leaf path) in
  if
    has_suffix l "_ms" || has_suffix l "_ns" || has_suffix l "_s"
    || has_suffix l "ms" && contains l "latency"
    || has_suffix l "bytes" || contains l "misses" || contains l "overloaded"
    || contains l "evictions" || contains l "violations"
    || contains l "deadline" || contains l "dropped" || contains l "idle"
  then Lower_better
  else if
    has_suffix l "rps" || contains l "speedup" || contains l "throughput"
    || has_suffix l "rate" || contains l "hits" || contains l "delivered"
  then Higher_better
  else Neutral

(* Comparison ------------------------------------------------------------ *)

type verdict = Ok_ | Regression | Improvement | Info

let compare_field ~tol ~min_delta path base cur =
  let delta = cur -. base in
  let pct =
    if Float.equal delta 0.0 then 0.0
    else if Float.equal base 0.0 then Float.infinity *. delta
    else 100.0 *. delta /. Float.abs base
  in
  match direction path with
  | Neutral -> (Info, pct)
  | dir ->
      if Float.abs delta <= min_delta then (Ok_, pct)
      else
        let worse =
          match dir with
          | Lower_better -> pct > tol
          | Higher_better -> pct < -.tol
          | Neutral -> false
        in
        let better =
          match dir with
          | Lower_better -> pct < -.tol
          | Higher_better -> pct > tol
          | Neutral -> false
        in
        if worse then (Regression, pct)
        else if better then (Improvement, pct)
        else (Ok_, pct)

(* Driver ----------------------------------------------------------------- *)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m ->
      Error (Printf.sprintf "%s: %s" path m)
  | contents -> (
      match Json.of_string contents with
      | Ok j -> Ok j
      | Error m -> Error (Printf.sprintf "%s: %s" path m))

let usage () =
  prerr_endline
    "usage: bench_diff [--tol PCT] [--field-tol SUBSTR=PCT]... \
     [--min-delta V] [--quiet] BASELINE.json CURRENT.json";
  exit 2

let () =
  let tol = ref 10.0 in
  let min_delta = ref 0.0 in
  let field_tols = ref [] in
  let quiet = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tol" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t -> tol := t
        | None -> usage ());
        parse rest
    | "--min-delta" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t -> min_delta := t
        | None -> usage ());
        parse rest
    | "--field-tol" :: v :: rest ->
        (match String.index_opt v '=' with
        | Some i -> (
            let sub = String.sub v 0 i in
            let pct = String.sub v (i + 1) (String.length v - i - 1) in
            match float_of_string_opt pct with
            | Some t -> field_tols := (sub, t) :: !field_tols
            | None -> usage ())
        | None -> usage ());
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
        files := f :: !files;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, cur_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let die m =
    prerr_endline ("bench_diff: " ^ m);
    exit 2
  in
  let base = match load base_path with Ok j -> j | Error m -> die m in
  let cur = match load cur_path with Ok j -> j | Error m -> die m in
  let base_map = flatten base in
  let cur_map = flatten cur in
  let tol_for path =
    match List.find_opt (fun (sub, _) -> contains path sub) !field_tols with
    | Some (_, t) -> t
    | None -> !tol
  in
  let regressions = ref 0 in
  let compared = ref 0 in
  let say fmt = Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt in
  say "bench_diff: %s -> %s (tol %.1f%%)" base_path cur_path !tol;
  List.iter
    (fun (path, b) ->
      match List.assoc_opt path cur_map with
      | None -> ()
      | Some c ->
          incr compared;
          let v, pct = compare_field ~tol:(tol_for path) ~min_delta:!min_delta path b c in
          let tag =
            match v with
            | Regression ->
                incr regressions;
                "REGRESSION"
            | Improvement -> "improved"
            | Ok_ -> "ok"
            | Info -> "info"
          in
          if v <> Ok_ && v <> Info then
            say "  %-10s %-60s %14.6g -> %14.6g  (%+.1f%%)" tag path b c pct
          else if not !quiet && v = Ok_ && Float.abs pct > tol_for path /. 2.0
          then say "  %-10s %-60s %14.6g -> %14.6g  (%+.1f%%)" tag path b c pct)
    base_map;
  let missing =
    List.length (List.filter (fun (p, _) -> List.assoc_opt p cur_map = None) base_map)
  in
  say "compared %d field(s), %d regression(s), %d baseline-only field(s)"
    !compared !regressions missing;
  if !compared = 0 then die "no shared numeric fields - wrong file pair?";
  exit (if !regressions > 0 then 1 else 0)
