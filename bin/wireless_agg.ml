(* Command-line interface to the wireless-aggregation library.

   Subcommands:
     plan        build and validate an aggregation schedule for a deployment
     simulate    run the convergecast simulator on a plan
     median      order-statistics queries over counting convergecasts
     kconnect    k-edge-connected structures (Remark 2)
     experiment  regenerate one or all of the paper's tables/figures
     serve       run the resident plan server (JSON-lines over TCP)
     client      send one operation to a running plan server
     top         live telemetry dashboard for a running plan server
     list        list available experiments *)

module Pipeline = Wa_core.Pipeline
module Agg_tree = Wa_core.Agg_tree
module Simulator = Wa_core.Simulator
module Params = Wa_sinr.Params
module Rng = Wa_util.Rng

open Cmdliner

(* Shared arguments ---------------------------------------------------- *)

let seed_arg =
  let doc = "PRNG seed for the deployment." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let nodes_arg =
  let doc = "Number of sensor nodes." in
  Arg.(value & opt int 100 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let side_arg =
  let doc = "Side of the deployment square." in
  Arg.(value & opt float 1000.0 & info [ "side" ] ~docv:"S" ~doc)

let deploy_arg =
  let doc =
    "Deployment family: uniform | disk | grid | clusters | line | expline."
  in
  Arg.(value & opt string "uniform" & info [ "deploy" ] ~docv:"KIND" ~doc)

let power_arg =
  let doc =
    "Power mode: global | oblivious:<tau> | uniform | linear (e.g. \
     oblivious:0.5)."
  in
  Arg.(value & opt string "global" & info [ "power" ] ~docv:"MODE" ~doc)

let alpha_arg =
  let doc = "Path-loss exponent alpha (> 2)." in
  Arg.(value & opt float 3.0 & info [ "alpha" ] ~doc)

let beta_arg =
  let doc = "SINR threshold beta (> 0)." in
  Arg.(value & opt float 1.0 & info [ "beta" ] ~doc)

let quick_arg =
  let doc = "Use reduced experiment sizes." in
  Arg.(value & flag & info [ "quick" ] ~doc)

(* Telemetry ------------------------------------------------------------ *)

type telemetry = {
  verbosity : int;
  trace_out : string option;
  metrics_out : string option;
  prom_out : string option;
}

let telemetry_arg =
  let verbose =
    let doc =
      "Log subsystem activity to stderr (repeat for debug) and print a \
       telemetry summary after the run."
    in
    Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)
  in
  let trace_out =
    let doc = "Write pipeline spans to this file as JSON lines." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc = "Write the metrics registry to this file as JSON." in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let prom_out =
    let doc =
      "Write the metrics registry as a Prometheus text exposition to this \
       file (under $(b,serve): rewritten every $(b,--prom-interval) seconds \
       while the server runs)."
    in
    Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"FILE" ~doc)
  in
  let make v t m p =
    { verbosity = List.length v; trace_out = t; metrics_out = m; prom_out = p }
  in
  Term.(const make $ verbose $ trace_out $ metrics_out $ prom_out)

let write_telemetry tel =
  let report = Wa_obs.Report.capture () in
  let ( let* ) = Result.bind in
  let* () =
    match tel.trace_out with
    | None -> Ok ()
    | Some path -> (
        Wa_obs.Export.write_trace path report;
        (* Parse back what we just wrote: malformed telemetry should
           fail the run, not the analysis three tools later. *)
        match Wa_obs.Export.validate_trace_file path with
        | Ok n ->
            Printf.printf "wrote %d span(s) to %s\n" n path;
            Ok ()
        | Error m -> Error (`Msg ("trace self-check failed: " ^ m)))
  in
  let* () =
    match tel.metrics_out with
    | None -> Ok ()
    | Some path -> (
        Wa_obs.Export.write_metrics path report;
        match Wa_obs.Export.validate_metrics_file path with
        | Ok _ ->
            Printf.printf "wrote metrics to %s\n" path;
            Ok ()
        | Error m -> Error (`Msg ("metrics self-check failed: " ^ m)))
  in
  let* () =
    match tel.prom_out with
    | None -> Ok ()
    | Some path ->
        Wa_obs.Export.write_prometheus path report;
        Printf.printf "wrote prometheus exposition to %s\n" path;
        Ok ()
  in
  if tel.verbosity > 0 then
    Format.eprintf "%a@." Wa_obs.Report.pp report;
  Ok ()

(* Runs every subcommand body: installs the source-tagged reporter (so
   degraded-path warnings are visible by default), and when any
   telemetry output was requested enables the sink and exports after
   the run. *)
let with_telemetry tel f =
  Wa_obs.Log.setup ?level:(Wa_obs.Log.level_of_verbosity tel.verbosity) ();
  let wanted =
    tel.trace_out <> None || tel.metrics_out <> None || tel.prom_out <> None
    || tel.verbosity > 0
  in
  if wanted then begin
    Wa_obs.enable ();
    Wa_obs.reset ()
  end;
  match f () with
  | Error _ as e -> e
  | Ok () -> if wanted then write_telemetry tel else Ok ()

let parse_power s =
  match String.lowercase_ascii s with
  | "global" -> Ok `Global
  | "uniform" -> Ok `Uniform
  | "linear" -> Ok `Linear
  | s when String.length s > 10 && String.sub s 0 10 = "oblivious:" -> (
      match float_of_string_opt (String.sub s 10 (String.length s - 10)) with
      | Some tau when tau > 0.0 && tau < 1.0 -> Ok (`Oblivious tau)
      | _ -> Error (`Msg "oblivious tau must lie strictly in (0,1)"))
  | _ -> Error (`Msg ("unknown power mode: " ^ s))

let make_deployment kind ~seed ~n ~side params =
  let rng = Rng.create seed in
  match String.lowercase_ascii kind with
  | "uniform" -> Ok (Wa_instances.Random_deploy.uniform_square rng ~n ~side)
  | "disk" ->
      Ok (Wa_instances.Random_deploy.uniform_disk rng ~n ~radius:(side /. 2.0))
  | "grid" ->
      let r = max 2 (int_of_float (sqrt (float_of_int n))) in
      Ok
        (Wa_instances.Random_deploy.grid ~rows:r ~cols:r
           ~spacing:(side /. float_of_int r))
  | "clusters" ->
      let c = max 2 (n / 20) in
      Ok
        (Wa_instances.Random_deploy.clusters rng ~clusters:c
           ~per_cluster:(max 1 (n / c)) ~side ~spread:(side /. 200.0))
  | "line" -> Ok (Wa_instances.Random_deploy.uniform_line rng ~n ~length:side)
  | "expline" ->
      let nmax = Wa_instances.Exp_line.max_float_points params ~tau:0.5 in
      Ok (Wa_instances.Exp_line.pointset params ~tau:0.5 ~n:(min n nmax))
  | k -> Error (`Msg ("unknown deployment kind: " ^ k))

let build_params alpha beta =
  match Params.make ~alpha ~beta () with
  | p -> Ok p
  | exception Invalid_argument m -> Error (`Msg m)

(* plan ----------------------------------------------------------------- *)

let json_arg =
  let doc = "Write the plan (nodes, links, schedule) to this file as JSON." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let dot_arg =
  let doc = "Write a Graphviz rendering of the scheduled tree to this file." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let points_in_arg =
  let doc = "Read the deployment from a CSV file (x,y per line) instead of \
             generating one." in
  Arg.(value & opt (some string) None & info [ "points" ] ~docv:"FILE" ~doc)

let obtain_deployment points_in deploy ~seed ~n ~side params =
  match points_in with
  | Some path -> Wa_io.Pointset_io.read_file path |> Result.map_error (fun m -> `Msg m)
  | None -> make_deployment deploy ~seed ~n ~side params

let audit_arg =
  let doc =
    "Re-verify the finished plan with the runtime invariant auditor \
     (slot partition, per-slot SINR, tree rootedness, conflict-graph \
     engine agreement, telemetry consistency).  Exits non-zero on any \
     violation."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

let run_plan seed n side deploy power alpha beta json dot points_in audit tel =
  with_telemetry tel @@ fun () ->
  let ( let* ) = Result.bind in
  let* params = build_params alpha beta in
  let* mode = parse_power power in
  let* ps = obtain_deployment points_in deploy ~seed ~n ~side params in
  let plan = Pipeline.plan ~params ~audit mode ps in
  Printf.printf "deployment: %s (n=%d, seed=%d)\n"
    (match points_in with Some f -> f | None -> deploy)
    (Wa_geom.Pointset.size ps) seed;
  Printf.printf "plan: %s\n" (Pipeline.describe plan);
  Printf.printf "raw colors: %d, repair added: %d\n" plan.Pipeline.raw_colors
    plan.Pipeline.repair_added;
  Printf.printf "schedule verified: %b\n" plan.Pipeline.valid;
  Printf.printf "tree depth: %d links\n" (Agg_tree.depth_in_links plan.Pipeline.agg);
  Option.iter
    (fun path ->
      Wa_io.Export.write_string path
        (Wa_io.Json.to_string (Wa_io.Export.plan_to_json plan));
      Printf.printf "wrote JSON to %s\n" path)
    json;
  Option.iter
    (fun path ->
      Wa_io.Export.write_string path (Wa_io.Export.plan_to_dot plan);
      Printf.printf "wrote DOT to %s (render: neato -n2 -Tsvg)\n" path)
    dot;
  match plan.Pipeline.audit with
  | None -> Ok ()
  | Some report ->
      Format.printf "%a@." Wa_analysis.Audit.pp_report report;
      if Wa_analysis.Audit.ok report then Ok ()
      else Error (`Msg "audit failed: plan violates its invariants")

let plan_cmd =
  let term =
    Term.(
      const run_plan $ seed_arg $ nodes_arg $ side_arg $ deploy_arg $ power_arg
      $ alpha_arg $ beta_arg $ json_arg $ dot_arg $ points_in_arg $ audit_arg
      $ telemetry_arg)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Build and validate an aggregation schedule.")
    (Term.term_result term)

(* generate --------------------------------------------------------------- *)

let out_arg =
  let doc = "Output CSV file for the generated deployment." in
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let run_generate seed n side deploy alpha beta out =
  let ( let* ) = Result.bind in
  let* params = build_params alpha beta in
  let* ps = make_deployment deploy ~seed ~n ~side params in
  Wa_io.Pointset_io.write_file out ps;
  Printf.printf "wrote %d points to %s\n" (Wa_geom.Pointset.size ps) out;
  Ok ()

let generate_cmd =
  let term =
    Term.(
      const run_generate $ seed_arg $ nodes_arg $ side_arg $ deploy_arg
      $ alpha_arg $ beta_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a deployment and write it as CSV.")
    (Term.term_result term)

(* simulate -------------------------------------------------------------- *)

let periods_arg =
  let doc = "Schedule periods to simulate." in
  Arg.(value & opt int 50 & info [ "periods" ] ~docv:"P" ~doc)

let run_simulate seed n side deploy power alpha beta periods tel =
  with_telemetry tel @@ fun () ->
  let ( let* ) = Result.bind in
  let* params = build_params alpha beta in
  let* mode = parse_power power in
  let* ps = make_deployment deploy ~seed ~n ~side params in
  let plan = Pipeline.plan ~params mode ps in
  let r = Pipeline.simulate ~horizon_periods:periods plan in
  Printf.printf "plan: %s\n" (Pipeline.describe plan);
  Printf.printf "frames: generated %d, delivered %d\n"
    r.Simulator.frames_generated r.Simulator.frames_delivered;
  Printf.printf "rate: achieved %.4f, steady %.4f (schedule %.4f)\n"
    r.Simulator.achieved_rate r.Simulator.steady_rate (Pipeline.rate plan);
  Printf.printf "latency: mean %.1f, max %d slots\n" r.Simulator.mean_latency
    r.Simulator.max_latency;
  Printf.printf "max buffered frames: %d\n" r.Simulator.max_buffer;
  Printf.printf "aggregates correct: %b, violations: %d, idle slots: %d\n"
    r.Simulator.aggregates_correct r.Simulator.violations r.Simulator.idle_slots;
  Ok ()

let simulate_cmd =
  let term =
    Term.(
      const run_simulate $ seed_arg $ nodes_arg $ side_arg $ deploy_arg
      $ power_arg $ alpha_arg $ beta_arg $ periods_arg $ telemetry_arg)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the convergecast simulator on a plan.")
    (Term.term_result term)

(* experiment ------------------------------------------------------------ *)

let ids_arg =
  let doc = "Experiment ids (F1..F5, T1..T14); all when omitted." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let run_experiment quick ids tel =
  with_telemetry tel @@ fun () ->
  match ids with
  | [] ->
      Wa_experiments.Experiments.run_all ~quick ();
      Ok ()
  | ids -> (
      try
        Wa_experiments.Experiments.run_all ~quick ~ids ();
        Ok ()
      with Failure m -> Error (`Msg m))

let experiment_cmd =
  let term = Term.(const run_experiment $ quick_arg $ ids_arg $ telemetry_arg) in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's tables and figures (see DESIGN.md).")
    (Term.term_result term)

(* median ----------------------------------------------------------------- *)

let run_median seed n side deploy power alpha beta =
  let ( let* ) = Result.bind in
  let* params = build_params alpha beta in
  let* mode = parse_power power in
  let* ps = make_deployment deploy ~seed ~n ~side params in
  let plan = Pipeline.plan ~params mode ps in
  let rng = Rng.create (seed + 99) in
  let values = Array.init (Wa_geom.Pointset.size ps) (fun _ -> Rng.int rng 10_000) in
  let readings node = values.(node) in
  let r =
    Wa_core.Functions.median ~range:(0, 10_000) ~readings plan.Pipeline.agg
      plan.Pipeline.schedule
  in
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  Printf.printf "plan: %s\n" (Pipeline.describe plan);
  Printf.printf "true median: %d\n" sorted.(((Array.length sorted + 1) / 2) - 1);
  Printf.printf "network-computed median: %d\n" r.Wa_core.Functions.value;
  Printf.printf "cost: %d probes x %d slots = %d slots\n"
    r.Wa_core.Functions.probes r.Wa_core.Functions.probe_latency
    r.Wa_core.Functions.slots_used;
  Ok ()

let median_cmd =
  let term =
    Term.(
      const run_median $ seed_arg $ nodes_arg $ side_arg $ deploy_arg $ power_arg
      $ alpha_arg $ beta_arg)
  in
  Cmd.v
    (Cmd.info "median"
       ~doc:"Compute the median reading by counting convergecasts (Sec 3.1).")
    (Term.term_result term)

(* kconnect --------------------------------------------------------------- *)

let k_arg =
  let doc = "Redundancy level (edge-disjoint spanning trees)." in
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc)

let run_kconnect seed n side deploy alpha beta k =
  let ( let* ) = Result.bind in
  let* params = build_params alpha beta in
  let* ps = make_deployment deploy ~seed ~n ~side params in
  match Wa_core.K_connectivity.build ~k ps with
  | exception Invalid_argument m -> Error (`Msg m)
  | kc ->
      let sched, repairs =
        Wa_core.K_connectivity.schedule params kc Wa_core.Greedy_schedule.Global_power
      in
      Printf.printf "k = %d: %d links over %d nodes\n" k
        (Wa_sinr.Linkset.size kc.Wa_core.K_connectivity.links)
        (Wa_geom.Pointset.size ps);
      Printf.printf "k-edge-connected: %b\n"
        (Wa_core.K_connectivity.is_k_edge_connected kc);
      Printf.printf "Lemma-1 pressure: %.2f\n"
        (Wa_core.K_connectivity.max_longer_pressure params kc);
      Printf.printf "verified schedule: %d slots (%d repair splits)\n"
        (Wa_core.Schedule.length sched) repairs;
      Ok ()

let kconnect_cmd =
  let term =
    Term.(
      const run_kconnect $ seed_arg $ nodes_arg $ side_arg $ deploy_arg
      $ alpha_arg $ beta_arg $ k_arg)
  in
  Cmd.v
    (Cmd.info "kconnect"
       ~doc:"Build and schedule a k-edge-connected structure (Remark 2).")
    (Term.term_result term)

(* serve ------------------------------------------------------------------ *)

let host_arg =
  let doc = "Host/interface to bind or connect to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "TCP port (0 binds an ephemeral port when serving)." in
  Arg.(value & opt int 7461 & info [ "port" ] ~docv:"PORT" ~doc)

let run_serve host port workers queue_capacity cache_entries cache_mb
    max_sessions prom_interval tel =
  with_telemetry tel @@ fun () ->
  let config =
    {
      Wa_service.Server.default_config with
      host;
      port;
      workers;
      queue_capacity;
      cache_entries;
      cache_bytes = cache_mb * 1024 * 1024;
      max_sessions;
      prom_out = tel.prom_out;
      prom_interval_s = prom_interval;
    }
  in
  match Wa_service.Server.create config with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (`Msg
          (Printf.sprintf "cannot listen on %s:%d: %s" host port
             (Unix.error_message e)))
  | srv ->
      let stop _ = Wa_service.Server.stop srv in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Printf.printf "wa_service listening on %s:%d\n%!" host
        (Wa_service.Server.port srv);
      Wa_service.Server.run srv;
      Printf.printf "%s\n" (Wa_service.Server.summary srv);
      Ok ()

let serve_cmd =
  let workers =
    let doc = "Worker domains (default: available domains - 1)." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"W" ~doc)
  in
  let queue_capacity =
    let doc = "Bounded request-queue capacity; beyond it requests are \
               answered with an overloaded error." in
    Arg.(value & opt int 128 & info [ "queue-capacity" ] ~docv:"Q" ~doc)
  in
  let cache_entries =
    let doc = "Maximum plan-cache entries (LRU beyond this)." in
    Arg.(value & opt int 128 & info [ "cache-entries" ] ~docv:"E" ~doc)
  in
  let cache_mb =
    let doc = "Plan-cache budget in MiB." in
    Arg.(value & opt int 256 & info [ "cache-mb" ] ~docv:"MB" ~doc)
  in
  let max_sessions =
    let doc = "Maximum concurrent churn sessions." in
    Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"S" ~doc)
  in
  let prom_interval =
    let doc = "Seconds between Prometheus exposition rewrites (with \
               --prom-out)." in
    Arg.(value & opt float 5.0 & info [ "prom-interval" ] ~docv:"SEC" ~doc)
  in
  let term =
    Term.(
      const run_serve $ host_arg $ port_arg $ workers $ queue_capacity
      $ cache_entries $ cache_mb $ max_sessions $ prom_interval
      $ telemetry_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the plan server: a JSON-lines TCP service with a \
          content-addressed plan cache and stateful churn sessions \
          (DESIGN.md, section 11).  SIGINT/SIGTERM drain gracefully.")
    (Term.term_result term)

(* top -------------------------------------------------------------------- *)

let fmt_ms v = if Float.is_nan v then "      -" else Printf.sprintf "%7.2f" v

let render_top host port (t : Wa_service.Protocol.telemetry_summary) =
  let module P = Wa_service.Protocol in
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "wa top - %s:%d   uptime %.1fs   window %.1fs (%d roll%s)" host port
    t.P.tel_uptime_s t.P.tel_window_s t.P.tel_windows
    (if t.P.tel_windows = 1 then "" else "s");
  line "in-flight %d   queue %d   sessions %d" t.P.tel_in_flight
    t.P.tel_queue_depth t.P.tel_sessions;
  let c = t.P.tel_cache in
  let lookups = c.P.cs_hits + c.P.cs_misses in
  let hit_pct =
    if lookups = 0 then 0.0
    else 100.0 *. float_of_int c.P.cs_hits /. float_of_int lookups
  in
  line "cache %d entries / %.1f MiB   hit %.1f%% (%d/%d)   coalesced %d   \
        evicted %d"
    c.P.cs_entries
    (float_of_int c.P.cs_bytes /. 1048576.0)
    hit_pct c.P.cs_hits lookups c.P.cs_coalesced c.P.cs_evictions;
  let g = t.P.tel_gc in
  line "gc heap %.1f MiB   minor %d   major %d   compactions %d"
    (float_of_int (g.P.gc_heap_words * 8) /. 1048576.0)
    g.P.gc_minor_collections g.P.gc_major_collections g.P.gc_compactions;
  line "";
  line "%-16s %8s %7s %7s %7s %7s" "op" "count" "p50" "p90" "p99" "max(ms)";
  (match t.P.tel_ops with
  | [] -> line "  (no requests in the window yet)"
  | ops ->
      List.iter
        (fun (o : P.op_latency) ->
          line "%-16s %8d %s %s %s %s" o.P.ol_op o.P.ol_count
            (fmt_ms o.P.ol_p50_ms) (fmt_ms o.P.ol_p90_ms)
            (fmt_ms o.P.ol_p99_ms) (fmt_ms o.P.ol_max_ms))
        ops);
  (match t.P.tel_exemplars with
  | [] -> ()
  | exemplars ->
      line "";
      line "slowest recent:";
      List.iter
        (fun (e : P.exemplar) ->
          line "  %-14s id=%-8d %.2f ms" e.P.ex_op e.P.ex_id e.P.ex_ms)
        exemplars);
  Buffer.contents b

let run_top host port interval iterations =
  let module C = Wa_service.Client in
  let module P = Wa_service.Protocol in
  let ( let* ) = Result.bind in
  let err m = `Msg m in
  let* c = C.connect ~host ~port () |> Result.map_error err in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let tty = Unix.isatty Unix.stdout in
  let rec go i =
    let* r = C.call c P.Telemetry |> Result.map_error err in
    match r.P.body with
    | P.Telemetry_r t ->
        (* On a terminal, redraw in place; piped output just appends
           one frame per poll. *)
        if tty then print_string "\027[H\027[2J";
        print_string (render_top host port t);
        flush stdout;
        if iterations > 0 && i >= iterations then Ok ()
        else begin
          Unix.sleepf interval;
          go (i + 1)
        end
    | P.Error { message; _ } -> Error (`Msg ("telemetry refused: " ^ message))
    | _ -> Error (`Msg "unexpected response to telemetry request")
  in
  go 1

let top_cmd =
  let interval =
    let doc = "Seconds between telemetry polls." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SEC" ~doc)
  in
  let iterations =
    let doc = "Stop after this many polls (0: run until interrupted)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let term =
    Term.(const run_top $ host_arg $ port_arg $ interval $ iterations)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a running plan server's telemetry op and render a live \
          dashboard: rolling per-op latency quantiles, cache hit rates, \
          queue depth, slow-request exemplars, GC counters.  Scrapes are \
          answered on the server's event loop, so the dashboard stays \
          live even when all workers are busy.")
    (Term.term_result term)

(* client ----------------------------------------------------------------- *)

let run_client host port deadline_ms trace op seed n side deploy power alpha
    beta gamma engine no_cache periods =
  let module C = Wa_service.Client in
  let module P = Wa_service.Protocol in
  let ( let* ) = Result.bind in
  let err m = `Msg m in
  let* mode = parse_power power in
  let* engine = P.engine_of_string engine |> Result.map_error err in
  let spec =
    {
      P.deploy = P.Generate { kind = deploy; n; seed; side };
      power = mode;
      alpha;
      beta;
      gamma;
      engine;
      no_cache;
    }
  in
  let* c = C.connect ~host ~port () |> Result.map_error err in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* Each response is printed as its raw wire line: the client doubles
     as a protocol inspector for scripting and the docs. *)
  let step body =
    let* r = C.call ?deadline_ms ~trace c body |> Result.map_error err in
    print_endline (P.response_to_line r);
    Ok r
  in
  match op with
  | "ping" ->
      let* _ = step P.Ping in
      Ok ()
  | "plan" ->
      let* _ = step (P.Plan spec) in
      Ok ()
  | "describe" ->
      let* _ = step (P.Describe spec) in
      Ok ()
  | "simulate" ->
      let* _ = step (P.Simulate { spec; periods }) in
      Ok ()
  | "stats" ->
      let* _ = step P.Stats in
      Ok ()
  | "telemetry" ->
      let* _ = step P.Telemetry in
      Ok ()
  | "shutdown" ->
      let* _ = step P.Shutdown in
      Ok ()
  | "churn-demo" -> (
      (* Scripted session: create a network around a central sink,
         stream a few arrivals, query it, remove one node, close. *)
      let* r =
        step
          (P.Churn_create
             {
               sink = Wa_geom.Vec2.make (side /. 2.0) (side /. 2.0);
               power = mode;
               alpha;
               beta;
               gamma;
             })
      in
      match r.P.body with
      | P.Churn_created session ->
          let rng = Rng.create seed in
          let point () =
            Wa_geom.Vec2.make (Rng.float rng side) (Rng.float rng side)
          in
          let* first = step (P.Churn_add { session; point = point () }) in
          let* _ = step (P.Churn_add { session; point = point () }) in
          let* _ = step (P.Churn_add { session; point = point () }) in
          let* _ = step (P.Churn_info { session }) in
          let* () =
            match first.P.body with
            | P.Churn_r { node = Some node; _ } ->
                let* _ = step (P.Churn_remove { session; node }) in
                Ok ()
            | _ -> Ok ()
          in
          let* _ = step (P.Churn_close { session }) in
          Ok ()
      | _ -> Error (`Msg "churn-demo: session creation was refused"))
  | op ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown op %S (expected ping | plan | describe | simulate | \
              stats | telemetry | churn-demo | shutdown)"
             op))

let client_cmd =
  let op_arg =
    let doc =
      "Operation: ping | plan | describe | simulate | stats | telemetry | \
       churn-demo | shutdown."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let trace_arg =
    let doc =
      "Ask the server to return each request's span tree in the response \
       envelope (the protocol's trace flag)."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in milliseconds (server-side)." in
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let gamma_arg =
    let doc = "Interference-safety margin gamma (mode default if omitted)." in
    Arg.(value & opt (some float) None & info [ "gamma" ] ~docv:"G" ~doc)
  in
  let engine_arg =
    let doc = "Conflict-graph engine: dense | indexed." in
    Arg.(value & opt string "indexed" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let no_cache_arg =
    (* Named --cold rather than --no-cache so that --n stays an
       unambiguous prefix of --nodes. *)
    let doc =
      "Bypass the server's plan cache — force a cold computation (the \
       protocol's no_cache flag)."
    in
    Arg.(value & flag & info [ "cold" ] ~doc)
  in
  let term =
    Term.(
      const run_client $ host_arg $ port_arg $ deadline_arg $ trace_arg
      $ op_arg $ seed_arg $ nodes_arg $ side_arg $ deploy_arg $ power_arg
      $ alpha_arg $ beta_arg $ gamma_arg $ engine_arg $ no_cache_arg
      $ periods_arg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one operation (or the scripted churn-demo session) to a \
          running plan server and print the raw response lines.")
    (Term.term_result term)

(* list ------------------------------------------------------------------ *)

let run_list () =
  List.iter
    (fun (e : Wa_experiments.Experiments.t) ->
      Printf.printf "%-4s %s\n" e.Wa_experiments.Experiments.id
        e.Wa_experiments.Experiments.title)
    Wa_experiments.Experiments.all

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available experiments.") Term.(const run_list $ const ())

(* main ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "wireless_agg" ~version:"1.0.0"
      ~doc:
        "Wireless aggregation scheduling in the SINR model \
         (Halldorsson-Tonoyan, ICDCS 2018)."
  in
  exit
    (Cmd.eval (Cmd.group info
       [ plan_cmd; generate_cmd; simulate_cmd; median_cmd; kconnect_cmd;
         experiment_cmd; serve_cmd; client_cmd; top_cmd; list_cmd ]))
